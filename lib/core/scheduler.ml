open Ent_entangle
module Obs = Ent_obs.Obs
module Event = Ent_obs.Event
module Timeseries = Ent_obs.Timeseries
module Fault = Ent_fault.Injector

(* Injection points: crashes between scheduler steps and between the
   individual commits of a group commit (the widow-prevention hot
   spot), lost dormant-pool snapshots, and forced client timeouts on
   pooled transactions. *)
let s_step = Fault.site "core.scheduler.step"
let s_group_commit = Fault.site "core.scheduler.group_commit"
let s_pool_snapshot = Fault.site "core.scheduler.pool_snapshot"
let s_timeout = Fault.site "core.entangle.timeout"

let m_runs = Obs.counter "core.scheduler.runs"
let m_submitted = Obs.counter "core.scheduler.submitted"
let m_timeouts = Obs.counter "core.scheduler.timeouts"
let m_deadlocks = Obs.counter "core.scheduler.deadlocks"
let m_widow_preventions = Obs.counter "core.scheduler.widow_preventions"
let m_run_length = Obs.histogram "core.scheduler.run_length"
let m_group_size = Obs.histogram "core.commit.group_size"
let m_dormant = Obs.gauge "core.pool.dormant"
let m_repooled = Obs.counter "core.pool.repooled"
let m_coord_rounds = Obs.counter "core.coordinate.rounds"
let m_coord_batch = Obs.histogram "core.coordinate.batch"
let m_blocked = Obs.histogram "core.entangle.blocked_s"
let m_txn_latency = Obs.histogram "core.scheduler.txn_latency_s"

(* SI-only: interned lazily so a pure-2PL run never registers it and the
   default metric snapshots stay byte-identical with the seed fixtures.
   Both forcing sites run on the coordinator domain, so the lazy cell is
   never raced. *)
let m_si_aborts = lazy (Obs.counter "txn.si_aborts")

type trigger =
  | Every_arrivals of int
  | Every_seconds of float
  | Manual

type evaluation_strategy =
  | Search
  | Combined

type config = {
  isolation : Isolation.t;
  connections : int;
  costs : Ent_sim.Cost.t;
  trigger : trigger;
  snapshot_pool : bool;
  evaluation : evaluation_strategy;
  runner : Ent_par.Pool.t option;
      (* [None] = the deterministic single-domain mode (bit-identical
         to the pre-parallel scheduler); [Some pool] = step runnable
         tasks and ground pending entangled queries on the pool's
         domains. Coordination rounds, wake-ups, group commits and all
         simulated-time accounting stay on the coordinator domain. *)
}

let default_config =
  {
    isolation = Isolation.full;
    connections = 100;
    costs = Ent_sim.Cost.default;
    trigger = Every_arrivals 1;
    snapshot_pool = false;
    evaluation = Search;
    runner = None;
  }

type outcome =
  | Committed
  | Timed_out
  | Rolled_back
  | Errored of string

type stats = {
  mutable runs : int;
  mutable commits : int;
  mutable repooled : int;
  mutable timeouts : int;
  mutable entangle_events : int;
  mutable deadlocks : int;
  mutable si_aborts : int;
  mutable coordination_rounds : int;
  mutable coord_wall_s : float;
}

type t = {
  engine : Ent_txn.Engine.t;
  config : config;
  pool : Ent_sim.Pool.t;
  groups : Group.t;
  gcache : Gcache.t;
  dormant : Executor.task Queue.t;  (* oldest first *)
  mutable arrivals_since_run : int;
  mutable next_task : int;
  mutable next_event : int;
  outcomes : (int, outcome) Hashtbl.t;
  mutable result_order : int list;  (* task ids, newest first *)
  task_index : (int, Executor.task) Hashtbl.t;
  stats : stats;
  mutable on_entangle : (event:int -> (int * string list) list -> unit) option;
  mutable next_conn : int;
  mutable last_run_end : float;
}

let create ?(config = default_config) engine =
  let t =
    {
    engine;
    config;
    pool = Ent_sim.Pool.create ~connections:config.connections;
    groups = Group.create ();
    gcache = Gcache.create (Ent_txn.Engine.catalog engine);
    dormant = Queue.create ();
    arrivals_since_run = 0;
    next_task = 1;
    next_event = 1;
    outcomes = Hashtbl.create 64;
    result_order = [];
    task_index = Hashtbl.create 64;
    stats =
      {
        runs = 0;
        commits = 0;
        repooled = 0;
        timeouts = 0;
        entangle_events = 0;
        deadlocks = 0;
        si_aborts = 0;
        coordination_rounds = 0;
        coord_wall_s = 0.0;
      };
      on_entangle = None;
      next_conn = 0;
      last_run_end = 0.0;
    }
  in
  (* Events carry simulated time alongside the monotonic stamp; the
     newest scheduler owns the clock (tests and tools run one at a
     time). The storage concurrency switch follows the same
     newest-scheduler-wins convention: a parallel scheduler turns on
     table-level locking/materialization, a deterministic one restores
     the original lock-free lazy paths. *)
  Event.set_sim_clock (fun () -> Ent_sim.Pool.now t.pool);
  Ent_storage.Table.set_concurrent (config.runner <> None);
  (* Versioned mode follows the same newest-scheduler-wins convention,
     but is enabled lazily by [submit] on the first Snapshot program —
     a pure-2PL scheduler never touches version chains and stays
     byte-identical to the pre-MVCC engine. *)
  Ent_storage.Table.set_versioned false;
  t

let engine t = t.engine
let config t = t.config
let set_on_entangle t f = t.on_entangle <- f

let add_on_entangle t f =
  match t.on_entangle with
  | None -> t.on_entangle <- Some f
  | Some g ->
    t.on_entangle <-
      Some
        (fun ~event participants ->
          g ~event participants;
          f ~event participants)
let now t = Ent_sim.Pool.now t.pool
let connection_loads t = Ent_sim.Pool.loads t.pool
let advance_time t seconds = Ent_sim.Pool.advance_to t.pool (now t +. seconds)
let stats t = t.stats

(* Parallel phases take observability off the workers' hot path: while
   the region runs, engine observer dispatch (the certifier/recorder
   behind [obs_mu]) and event-ring emission buffer into per-domain
   shards; the coordinator merges both — in emission-stamp order, an
   exact linearization — when the region ends. Flushing sits in the
   [finally] so an escaping exception cannot leave buffering on. *)
let in_parallel_region t f =
  Ent_txn.Engine.set_deferred_events t.engine true;
  Event.set_buffered true;
  Fun.protect
    ~finally:(fun () ->
      Ent_txn.Engine.set_deferred_events t.engine false;
      Event.set_buffered false;
      Ent_txn.Engine.flush_events t.engine;
      Event.flush_buffered ())
    f
let outcome t task_id = Hashtbl.find_opt t.outcomes task_id

let results t =
  List.rev_map
    (fun id -> (id, Hashtbl.find t.outcomes id))
    t.result_order

let dormant t =
  List.of_seq
    (Seq.map (fun (task : Executor.task) -> task.task_id) (Queue.to_seq t.dormant))

let dormant_programs t =
  List.of_seq
    (Seq.map (fun (task : Executor.task) -> task.program) (Queue.to_seq t.dormant))

let gcache_stats t = Gcache.stats t.gcache

let answers_of t task_id =
  match Hashtbl.find_opt t.task_index task_id with
  | Some task -> task.answers
  | None -> []

let outcome_name = function
  | Committed -> "committed"
  | Timed_out -> "timed_out"
  | Rolled_back -> "rolled_back"
  | Errored _ -> "errored"

let finalize t (task : Executor.task) outcome =
  Hashtbl.replace t.outcomes task.task_id outcome;
  t.result_order <- task.task_id :: t.result_order;
  (* Same endpoints as the attribution report (Pool_enter at submit,
     Finalize here), so the two are cross-checkable. *)
  if outcome = Committed then
    Obs.observe m_txn_latency (now t -. task.arrival);
  Event.emit ~txn:task.txn ~task:task.task_id
    (Event.Finalize { outcome = outcome_name outcome })

let drain_work t (task : Executor.task) =
  if task.work > 0.0 then begin
    Ent_sim.Pool.add_work t.pool task.conn task.work;
    task.work <- 0.0
  end

(* --- entanglement components ---

   After coordination, the answered queries decompose into connected
   components: q is linked to q' when one of q's chosen postconditions
   is provided by q''s chosen head. Each component is one entanglement
   operation E (it corresponds to one connected combined query in the
   algorithm of [6]). *)
let id_set ids =
  let set = Hashtbl.create (List.length ids) in
  List.iter (fun id -> Hashtbl.replace set id ()) ids;
  set

let components (answered : (Executor.task * Ground.grounding) list) =
  let uf = Group.create () in
  let providers : (Ir.ground_atom, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((task : Executor.task), (g : Ground.grounding)) ->
      List.iter
        (fun atom ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt providers atom) in
          Hashtbl.replace providers atom (task.task_id :: existing))
        g.g_head)
    answered;
  List.iter
    (fun ((task : Executor.task), (g : Ground.grounding)) ->
      List.iter
        (fun atom ->
          match Hashtbl.find_opt providers atom with
          | Some owners -> Group.join uf (task.task_id :: owners)
          | None -> ())
        g.g_post)
    answered;
  (* bucket tasks by component root *)
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun ((task : Executor.task), _) ->
      if Hashtbl.mem seen task.task_id then None
      else begin
        let member_ids = id_set (Group.members uf task.task_id) in
        let members =
          List.filter
            (fun ((other : Executor.task), _) -> Hashtbl.mem member_ids other.task_id)
            answered
        in
        List.iter (fun ((o : Executor.task), _) -> Hashtbl.replace seen o.task_id ()) members;
        Some (List.map fst members)
      end)
    answered

(* --- the run loop --- *)

let repool t (task : Executor.task) =
  Executor.reset_for_retry task;
  t.stats.repooled <- t.stats.repooled + 1;
  Obs.incr m_repooled;
  Event.emit ~task:task.task_id Event.Pool_enter;
  Queue.add task t.dormant

let fail_or_repool t (task : Executor.task) =
  (* The engine transaction is already aborted at this point. *)
  match task.status with
  | Failed failure when Executor.failure_is_final failure ->
    finalize t task
      (match failure with
      | Explicit_rollback -> Rolled_back
      | Program_error msg -> Errored msg
      | Deadlock | Si_conflict _ -> assert false)
  | _ ->
    (* An injected timeout models the client giving up on a pooled
       transaction, whatever its declared deadline. *)
    let expired =
      Fault.drops s_timeout
      ||
      match task.deadline with
      | Some deadline -> now t >= deadline
      | None -> false
    in
    if expired then begin
      t.stats.timeouts <- t.stats.timeouts + 1;
      Obs.incr m_timeouts;
      finalize t task Timed_out
    end
    else repool t task

let run_once t =
  if not (Queue.is_empty t.dormant) then begin
    let costs = t.config.costs in
    let isolation = t.config.isolation in
    t.stats.runs <- t.stats.runs + 1;
    Obs.incr m_runs;
    t.arrivals_since_run <- 0;
    Group.reset t.groups;
    let tasks = List.of_seq (Queue.to_seq t.dormant) in
    Queue.clear t.dormant;
    Obs.observe m_run_length (float_of_int (List.length tasks));
    ignore (Event.new_run ());
    Event.emit (Event.Run_start { pool = List.length tasks });
    (* Liveness is a hash set keyed by task id; iteration stays on the
       original [tasks] list (pool order) and skips dead entries, so
       removal is O(1) without disturbing the deterministic order. *)
    let alive : (int, Executor.task) Hashtbl.t =
      Hashtbl.create (List.length tasks)
    in
    let rank : (int, int) Hashtbl.t = Hashtbl.create (List.length tasks) in
    List.iteri
      (fun i (task : Executor.task) ->
        Hashtbl.replace alive task.task_id task;
        Hashtbl.replace rank task.task_id i)
      tasks;
    let iter_live f =
      List.iter
        (fun (task : Executor.task) ->
          if Hashtbl.mem alive task.task_id then f task)
        tasks
    in
    let live_tasks () =
      List.filter
        (fun (task : Executor.task) -> Hashtbl.mem alive task.task_id)
        tasks
    in
    (* Live members of a group, in pool order (groups are tiny, the
       sort is noise). *)
    let members_live ids =
      List.filter_map (fun id -> Hashtbl.find_opt alive id) ids
      |> List.sort (fun (a : Executor.task) (b : Executor.task) ->
             Int.compare (Hashtbl.find rank a.task_id)
               (Hashtbl.find rank b.task_id))
    in
    (* Round-robin connection assignment: one transaction per
       connection at a time; a greedy least-loaded pick would dump a
       whole run onto a connection that lagged after the previous run,
       because only the tiny BEGIN cost is visible at assignment
       time. *)
    List.iter
      (fun (task : Executor.task) ->
        task.conn <- t.next_conn mod t.config.connections;
        t.next_conn <- t.next_conn + 1;
        Event.emit ~task:task.task_id Event.Pool_exit;
        Executor.start t.engine costs task;
        drain_work t task)
      tasks;
    let commit_group t_ (members : Executor.task list) =
      Obs.observe m_group_size (float_of_int (List.length members));
      if Event.logging () then
        Event.emit
          (Event.Group_commit
             {
               members =
                 List.map (fun (o : Executor.task) -> o.task_id) members;
             });
      List.iter
        (fun (task : Executor.task) ->
          (* crash between the member commits of one group: the log
             keeps a half-committed Entangle_group that recovery must
             roll back as group victims *)
          Fault.hit s_group_commit;
          let wrote = Ent_txn.Engine.savepoint t_.engine task.txn > 0 in
          Ent_txn.Engine.commit t_.engine task.txn;
          (* explicit COMMIT is a round trip; the flush is paid only
             when this transaction wrote (always, for -T programs that
             made it here; usually never, for -Q whose statements
             committed themselves) *)
          if task.program.transactional then
            task.work <- task.work +. costs.c_stmt;
          if wrote then task.work <- task.work +. costs.c_commit;
          drain_work t_ task;
          t_.stats.commits <- t_.stats.commits + 1;
          finalize t_ task Committed;
          Hashtbl.remove alive task.task_id)
        members
    in
    (* Post-step bookkeeping shared by both modes: simulated-time
       drain, entanglement-wait stamping, deadlock accounting. Runs on
       the coordinator (it touches the sim pool and the stats). *)
    let after_step (task : Executor.task) =
      drain_work t task;
      if task.status = Waiting_entangled && task.entangled_since = None then
        task.entangled_since <- Some (now t);
      match task.status with
      | Failed Deadlock ->
        t.stats.deadlocks <- t.stats.deadlocks + 1;
        Obs.incr m_deadlocks
      | Failed (Si_conflict _) ->
        t.stats.si_aborts <- t.stats.si_aborts + 1;
        Obs.incr (Lazy.force m_si_aborts)
      | _ -> ()
    in
    let progress = ref true in
    while !progress do
      progress := false;
      (* 1. step every runnable task *)
      (match t.config.runner with
      | None ->
        iter_live (fun (task : Executor.task) ->
            if task.status = Runnable then begin
              Fault.hit s_step;
              Executor.step t.engine isolation costs task;
              after_step task;
              progress := true
            end)
      | Some pool ->
        (* Independent transactions step concurrently: [Executor.step]
           only mutates task-private fields plus engine/storage state
           that is shard- or mutex-guarded. A task that loses a lock
           race simply parks as [Waiting_lock] and is woken in phase 2,
           exactly like a sequentially blocked task. *)
        let runnable =
          List.filter
            (fun (task : Executor.task) -> task.status = Runnable)
            (live_tasks ())
        in
        if runnable <> [] then begin
          let arr = Array.of_list runnable in
          in_parallel_region t (fun () ->
              Ent_par.Pool.run_indexed pool (Array.length arr) (fun i ->
                  Fault.hit s_step;
                  Executor.step t.engine isolation costs arr.(i)));
          Array.iter after_step arr;
          progress := true
        end);
      (* 2. lock wake-ups. Txn ids drift as -Q tasks autocommit, so the
         txn→task map is rebuilt per batch: O(live + woken), not
         O(live × woken). *)
      let woken = Ent_txn.Engine.take_wakeups t.engine in
      if woken <> [] then begin
        let by_txn : (int, Executor.task) Hashtbl.t = Hashtbl.create 32 in
        iter_live (fun task -> Hashtbl.replace by_txn task.txn task);
        List.iter
          (fun txn ->
            match Hashtbl.find_opt by_txn txn with
            | Some task when task.status = Waiting_lock ->
              task.status <- Runnable;
              Event.emit ~txn:task.txn ~task:task.task_id Event.Lock_grant;
              progress := true
            | _ -> ())
          woken
      end;
      (* 3. group commits: a ready task commits as soon as every live
         member of its entanglement group is ready (Figure 4). *)
      let committed_some = ref false in
      let consider (task : Executor.task) =
        if task.status = Ready && Hashtbl.mem alive task.task_id
        then begin
          let member_tasks = members_live (Group.members t.groups task.task_id) in
          let all_ready =
            (not isolation.group_commit)
            || List.for_all
                 (fun (o : Executor.task) -> o.status = Ready)
                 member_tasks
          in
          if all_ready then begin
            let to_commit =
              if isolation.group_commit then member_tasks else [ task ]
            in
            (* First-committer-wins (snapshot isolation): a member
               whose write set was overwritten by a commit after its
               snapshot dooms the whole group. Abort and repool —
               the retry runs on a fresh snapshot. *)
            let si_conflict =
              List.find_map
                (fun (o : Executor.task) ->
                  Ent_txn.Engine.validate_snapshot t.engine o.txn)
                to_commit
            in
            match si_conflict with
            | Some (table, row) ->
              Ent_txn.Engine.abort_group t.engine
                (List.map (fun (o : Executor.task) -> o.txn) to_commit);
              List.iter
                (fun (member : Executor.task) ->
                  member.status <-
                    Executor.Failed (Executor.Si_conflict (table, row));
                  member.work <- member.work +. costs.c_abort;
                  drain_work t member;
                  t.stats.si_aborts <- t.stats.si_aborts + 1;
                  Obs.incr (Lazy.force m_si_aborts);
                  Hashtbl.remove alive member.task_id;
                  fail_or_repool t member)
                to_commit;
              committed_some := true
            | None -> (
              (* Integrity check (Assumption 3.1/3.5): refuse to commit
                 a (group of) transaction(s) whose writes leave the
                 database inconsistent. The whole group fails
                 permanently: retrying would re-derive the same state. *)
              match Ent_txn.Engine.violated_constraint t.engine with
              | Some name ->
                Ent_txn.Engine.abort_group t.engine
                  (List.map (fun (o : Executor.task) -> o.txn) to_commit);
                List.iter
                  (fun (member : Executor.task) ->
                    member.work <- member.work +. costs.c_abort;
                    drain_work t member;
                    finalize t member (Errored ("constraint violated: " ^ name));
                    Hashtbl.remove alive member.task_id)
                  to_commit;
                committed_some := true
              | None ->
                commit_group t to_commit;
                committed_some := true)
          end
        end
      in
      iter_live consider;
      if !committed_some then progress := true;
      (* 4. when nothing else can move: evaluate all pending entangled
         queries together *)
      if not !progress then begin
        (* Wall-clock (not simulated) time spent in the whole
           grounding+coordination phase, accrued into
           [stats.coord_wall_s]: bench divides it by the cell's wall
           time to report the coordination share of each scale-up
           point. Reading the monotonic clock never feeds back into
           scheduling, so deterministic output is unaffected. *)
        let coord_t0 = Ent_obs.Clock.monotonic () in
        let pending =
          List.filter
            (fun (task : Executor.task) -> task.status = Waiting_entangled)
            (live_tasks ())
        in
        (* Ground one pending entangled query: engine/cache side
           effects happen here (safe from any domain); stats and
           simulated-time accounting are left to the caller. *)
        let ground_one (task : Executor.task) ir =
          let access =
            Ent_txn.Engine.access t.engine task.txn ~grounding:true
              ~lock_reads:isolation.lock_grounding_reads ()
          in
          (* A cache hit re-acquires the footprint's grounding locks
             through [touch]; blocking/deadlock there is handled
             exactly like a blocked recomputation. *)
          let touch tables =
            Ent_txn.Engine.touch_grounding_tables t.engine task.txn
              ~lock_reads:isolation.lock_grounding_reads tables
          in
          (* Snapshot tasks ground against their begin-stamp snapshot,
             which the cache — keyed to live table versions — cannot
             serve: bypass it entirely (no lookup, no insert). *)
          let bypass =
            task.program.isolation = Ent_txn.Engine.Snapshot
          in
          match Gcache.compute ~bypass t.gcache ~access ~touch ~env:task.env ir with
          | groundings, cached ->
            task.work <-
              task.work
              +. (float_of_int (List.length groundings)
                 *. if cached then costs.c_ground_hit else costs.c_ground);
            `Ok (task, ir, groundings)
          | exception Ent_txn.Engine.Blocked _ ->
            (* retry grounding after a wake-up; the statement pointer
               still sits at the entangled query *)
            task.pending <- None;
            task.status <- Waiting_lock;
            `Gave_up
          | exception Ent_txn.Engine.Deadlock_victim _ ->
            Ent_txn.Engine.abort t.engine task.txn;
            task.status <- Failed Deadlock;
            `Deadlock
          | exception Ground.Ground_error msg ->
            Ent_txn.Engine.abort t.engine task.txn;
            task.status <- Failed (Program_error msg);
            `Gave_up
        in
        let settle = function
          | `Ok ((task : Executor.task), ir, groundings) ->
            drain_work t task;
            Some (task, ir, groundings)
          | `Deadlock ->
            t.stats.deadlocks <- t.stats.deadlocks + 1;
            None
          | `Gave_up -> None
        in
        let with_ir =
          List.filter_map
            (fun (task : Executor.task) ->
              Option.map (fun ir -> (task, ir)) task.pending)
            pending
        in
        let entries =
          match t.config.runner with
          | None ->
            List.filter_map
              (fun ((task : Executor.task), ir) -> settle (ground_one task ir))
              with_ir
          | Some pool ->
            (* Groundings only read (table-S locks) and no transaction
               is stepping during this phase, so pending queries ground
               concurrently; results settle in pool order on the
               coordinator, keeping coordination input deterministic up
               to lock outcomes. *)
            let arr = Array.of_list with_ir in
            let out = Array.make (Array.length arr) `Gave_up in
            in_parallel_region t (fun () ->
                Ent_par.Pool.run_indexed pool (Array.length arr) (fun i ->
                    let task, ir = arr.(i) in
                    out.(i) <- ground_one task ir));
            List.filter_map settle (Array.to_list out)
        in
        if entries <> [] then begin
          t.stats.coordination_rounds <- t.stats.coordination_rounds + 1;
          Obs.incr m_coord_rounds;
          Obs.observe m_coord_batch (float_of_int (List.length entries));
          Ent_sim.Pool.barrier t.pool
            (float_of_int (List.length entries) *. costs.c_coord);
          let entry_triples =
            List.map
              (fun ((task : Executor.task), ir, gs) -> (task.task_id, ir, gs))
              entries
          in
          let results =
            match (t.config.evaluation, t.config.runner) with
            (* Parallel mode searches signature-connectivity components
               on the pool; equivalent to the sequential search as long
               as no seed exhausts its node budget. *)
            | Search, Some pool ->
              Coordinate.evaluate_parallel ~runner:pool entry_triples
            | Search, None -> Coordinate.evaluate entry_triples
            | Combined, _ -> Combined.evaluate entry_triples
          in
          let result_index = Hashtbl.create (List.length results) in
          List.iter
            (fun (task_id, outcome) ->
              if not (Hashtbl.mem result_index task_id) then
                Hashtbl.add result_index task_id outcome)
            results;
          let outcome_of task_id = Hashtbl.find result_index task_id in
          let answered =
            List.filter_map
              (fun ((task : Executor.task), _, _) ->
                match outcome_of task.task_id with
                | Coordinate.Answered g -> Some (task, g)
                | Coordinate.Empty | Coordinate.No_partner -> None)
              entries
          in
          (* entanglement operations: one per component *)
          List.iter
            (fun (component : Executor.task list) ->
              let event = t.next_event in
              t.next_event <- event + 1;
              t.stats.entangle_events <- t.stats.entangle_events + 1;
              (* One Partner_match per member: each names the peers it
                 was entangled with, giving the exporter its causal
                 (flow) edges. *)
              if Event.logging () then begin
                let ids =
                  List.map (fun (task : Executor.task) -> task.task_id) component
                in
                List.iter
                  (fun (member : Executor.task) ->
                    Event.emit ~txn:member.txn ~task:member.task_id
                      (Event.Partner_match
                         {
                           event;
                           peers =
                             List.filter (fun i -> i <> member.task_id) ids;
                         }))
                  component
              end;
              Group.join t.groups
                (List.map (fun (task : Executor.task) -> task.task_id) component);
              (* Group members share lock ownership from now on: they
                 will commit or abort together, so a member writing a
                 table its partner grounding-read must not self-block
                 the group. Retag the whole (possibly merged) group. *)
              (match component with
              | first :: _ ->
                let full_group = Group.members t.groups first.task_id in
                let tag = List.fold_left min max_int full_group in
                List.iter
                  (fun tid ->
                    match Hashtbl.find_opt alive tid with
                    | Some member
                      when Ent_txn.Engine.is_active t.engine member.txn ->
                      Ent_txn.Engine.set_lock_group t.engine ~txn:member.txn
                        ~group:tag
                    | _ -> ())
                  full_group
              | [] -> ());
              let txns = List.map (fun (task : Executor.task) -> task.txn) component in
              Ent_txn.Engine.log_entangle_group t.engine ~event ~members:txns;
              match t.on_entangle with
              | Some hook ->
                hook ~event
                  (List.map
                     (fun (task : Executor.task) ->
                       (task.txn, Ent_txn.Engine.grounding_reads t.engine task.txn))
                     component)
              | None -> ())
            (components answered);
          (* deliver results *)
          List.iter
            (fun ((task : Executor.task), _, _) ->
              match outcome_of task.task_id with
              | Coordinate.Answered _ | Coordinate.Empty ->
                (match task.entangled_since with
                | Some since ->
                  Obs.observe m_blocked (now t -. since);
                  task.entangled_since <- None
                | None -> ());
                Event.emit ~txn:task.txn ~task:task.task_id
                  (Event.Answer
                     { empty = outcome_of task.task_id = Coordinate.Empty });
                Executor.deliver t.engine costs task (outcome_of task.task_id);
                drain_work t task;
                progress := true
              | Coordinate.No_partner -> ())
            entries
        end;
        t.stats.coord_wall_s <-
          t.stats.coord_wall_s +. (Ent_obs.Clock.monotonic () -. coord_t0)
      end;
      (* Coordinator-side telemetry sample, once per scheduler
         iteration: the parallel phases above are barriers, so no worker
         domain is running here and the time-series state is touched
         from exactly one domain. A single branch when sampling is
         off. *)
      Timeseries.sample (now t)
    done;
    (* Run end: whoever is left cannot proceed in this run. Blocked and
       ready-but-widowed tasks are aborted and repooled (the group
       abort cascade falls out: a ready task whose partner failed was
       never committed, so it lands here and aborts); final failures
       are recorded; expired timeouts fail permanently. *)
    let leftovers = live_tasks () in
    Hashtbl.reset alive;
    (* A Ready leftover finished its statements but its group never
       committed (a partner failed or never arrived): aborting and
       repooling it here is exactly the widow prevention of §3.4. *)
    List.iter
      (fun (task : Executor.task) ->
        if task.status = Ready then begin
          Obs.incr m_widow_preventions;
          Event.emit ~txn:task.txn ~task:task.task_id Event.Widow_prevention
        end)
      leftovers;
    (* Abort whole entanglement groups together: members share lock
       ownership and may have interleaved writes on the same rows, so
       their merged write log must be undone in one reverse pass. *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (task : Executor.task) ->
        if not (Hashtbl.mem seen task.task_id) then begin
          let member_ids = id_set (Group.members t.groups task.task_id) in
          let members =
            List.filter
              (fun (o : Executor.task) -> Hashtbl.mem member_ids o.task_id)
              leftovers
          in
          List.iter
            (fun (o : Executor.task) -> Hashtbl.replace seen o.task_id ())
            members;
          let to_abort =
            List.filter
              (fun (o : Executor.task) ->
                Ent_txn.Engine.is_active t.engine o.txn)
              members
          in
          Ent_txn.Engine.abort_group t.engine
            (List.map (fun (o : Executor.task) -> o.txn) to_abort);
          List.iter
            (fun (o : Executor.task) ->
              o.work <- o.work +. costs.c_abort;
              drain_work t o)
            to_abort
        end)
      leftovers;
    List.iter (fun task -> fail_or_repool t task) leftovers;
    (* Every transaction of this run is finished now, so the oldest
       live snapshot horizon is the current commit stamp: GC empties
       the version chains entirely. No-op in pure-2PL mode. *)
    Ent_txn.Engine.gc_versions t.engine;
    (* A dropped snapshot models the middleware failing to persist its
       pool state: recovery then falls back to the previous snapshot. *)
    if t.config.snapshot_pool && not (Fault.drops s_pool_snapshot) then
      Ent_txn.Engine.log_pool_snapshot t.engine
        (List.of_seq
           (Seq.map
              (fun (task : Executor.task) -> Program.to_string task.program)
              (Queue.to_seq t.dormant)));
    Obs.set m_dormant (float_of_int (Queue.length t.dormant));
    Event.emit (Event.Run_end { dormant = Queue.length t.dormant });
    t.last_run_end <- now t;
    Timeseries.sample (now t)
  end

let submit t (program : Program.t) =
  let task_id = t.next_task in
  t.next_task <- task_id + 1;
  Obs.incr m_submitted;
  (* First snapshot-isolation program: turn on version chains from here
     on. Never turned back off mid-scheduler — earlier 2PL writers left
     no chain entries, which reads exactly like "visible to all". *)
  if
    program.isolation = Ent_txn.Engine.Snapshot
    && not (Ent_storage.Table.versioned_enabled ())
  then Ent_storage.Table.set_versioned true;
  let task = Executor.make_task ~task_id ~arrival:(now t) program in
  Hashtbl.replace t.task_index task_id task;
  Event.emit ~task:task_id Event.Pool_enter;
  Queue.add task t.dormant;
  Obs.set m_dormant (float_of_int (Queue.length t.dormant));
  t.arrivals_since_run <- t.arrivals_since_run + 1;
  (match t.config.trigger with
  | Every_arrivals f when t.arrivals_since_run >= f -> run_once t
  | Every_seconds interval when now t -. t.last_run_end >= interval -> run_once t
  | Every_arrivals _ | Every_seconds _ | Manual -> ());
  task_id

(* Snapshot of who is blocked on whom. Unfinished tasks are either
   dormant (in the pool, possibly awaiting an entanglement partner) or
   stranded mid-run — the latter only observable from outside after a
   crash, which is exactly when entsim wants the picture: lock tables
   survive the scheduler's run loop, so post-crash holders still show.
   Lock edges come from the engine's waits-for relation; entanglement
   edges from the (last run's) group membership. *)
let wait_graph t =
  let locks = Ent_txn.Engine.locks t.engine in
  let pending =
    Hashtbl.fold
      (fun id task acc ->
        if Hashtbl.mem t.outcomes id then acc else (id, task) :: acc)
      t.task_index []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let dormant_ids = id_set (dormant t) in
  let task_of_txn txn =
    if txn < 0 then None
    else
      List.find_map
        (fun (id, (task : Executor.task)) ->
          if task.txn = txn then Some id else None)
        pending
  in
  let nodes =
    List.map
      (fun (id, (task : Executor.task)) ->
        let in_pool = Hashtbl.mem dormant_ids id in
        let state =
          if in_pool then "in-pool"
          else Format.asprintf "%a" Executor.pp_status task.status
        in
        let detail =
          if in_pool && Program.entangled_count task.program > 0 then
            "entangled, awaiting a partner"
          else if task.txn >= 0 then
            String.concat ", "
              (List.map
                 (fun (resource, mode) ->
                   Printf.sprintf "wants %s on %s"
                     (Ent_txn.Lock.mode_to_string mode)
                     (Ent_txn.Lock.resource_to_string resource))
                 (Ent_txn.Lock.waits locks ~txn:task.txn))
          else ""
        in
        {
          Waitgraph.n_task = id;
          n_txn = task.txn;
          n_label = task.program.label;
          n_state = state;
          n_detail = detail;
        })
      pending
  in
  let lock_edges =
    List.concat_map
      (fun (id, (task : Executor.task)) ->
        if task.txn < 0 then []
        else
          let blocking = Ent_txn.Lock.blockers locks ~txn:task.txn in
          List.concat_map
            (fun (resource, _) ->
              List.filter_map
                (fun (holder, mode) ->
                  if List.mem holder blocking then
                    Option.map
                      (fun dst ->
                        {
                          Waitgraph.e_src = id;
                          e_dst = dst;
                          e_why =
                            Printf.sprintf "lock %s (holds %s)"
                              (Ent_txn.Lock.resource_to_string resource)
                              (Ent_txn.Lock.mode_to_string mode);
                        })
                      (task_of_txn holder)
                  else None)
                (Ent_txn.Lock.holders locks resource))
            (Ent_txn.Lock.waits locks ~txn:task.txn))
      pending
  in
  let entangle_edges =
    List.concat_map
      (fun (id, _) ->
        List.filter_map
          (fun peer ->
            if peer > id && List.mem_assoc peer pending then
              Some { Waitgraph.e_src = id; e_dst = peer; e_why = "entangled" }
            else None)
          (Group.members t.groups id))
      pending
  in
  { Waitgraph.g_now = now t; nodes; edges = lock_edges @ entangle_edges }

let drain ?(max_runs = 10_000) t =
  let rec go remaining =
    if remaining > 0 && not (Queue.is_empty t.dormant) then begin
      let before_commits = t.stats.commits in
      let before_pool = Queue.length t.dormant in
      run_once t;
      let progressed =
        t.stats.commits > before_commits
        || Queue.length t.dormant < before_pool
      in
      if progressed then go (remaining - 1)
    end
  in
  go max_runs
