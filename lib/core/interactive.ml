open Ent_entangle

type state =
  | Active
  | Parked of Ir.t  (** waiting at an entangled query *)
  | Blocked_stmt of Ent_sql.Ast.stmt  (** lock conflict, retry later *)
  | Want_commit
  | Done
  | Failed of string

type session = {
  hub : hub;
  id : int;
  txn : int;
  env : Ent_sql.Eval.env;
  mutable state : state;
  mutable received : Ir.ground_atom list;
}

and hub = {
  engine : Ent_txn.Engine.t;
  isolation : Isolation.t;
  groups : Group.t;
  mutable sessions : session list;
  mutable next_id : int;
  mutable next_event : int;
}

type reply =
  | Rows of Ent_storage.Value.t array list
  | Affected of int
  | Answered of Ir.ground_atom list
  | Parked
  | Committed
  | Commit_pending
  | Blocked
  | Aborted of string

let create_hub ?(isolation = Isolation.full) engine =
  {
    engine;
    isolation;
    groups = Group.create ();
    sessions = [];
    next_id = 1;
    next_event = 1_000_000;  (* distinct from the batch scheduler's ids *)
  }

let start hub =
  let session =
    {
      hub;
      id = hub.next_id;
      txn = Ent_txn.Engine.begin_txn hub.engine;
      env = Ent_sql.Eval.fresh_env ();
      state = Active;
      received = [];
    }
  in
  hub.next_id <- hub.next_id + 1;
  hub.sessions <- session :: hub.sessions;
  session

let answers session = session.received
let env session = session.env

let parked_count hub =
  List.length
    (List.filter
       (fun s ->
         match s.state with
         | Parked _ -> true
         | _ -> false)
       hub.sessions)

let group_members hub session =
  let ids = Group.members hub.groups session.id in
  List.filter (fun s -> List.mem s.id ids) hub.sessions

(* Abort a session and (under group commit) its whole entanglement
   group: interactive users learn about it at their next poll. *)
let rec abort_group hub session reason =
  let victims =
    if hub.isolation.group_commit then group_members hub session else [ session ]
  in
  Ent_txn.Engine.abort_group hub.engine (List.map (fun s -> s.txn) victims);
  List.iter
    (fun s ->
      match s.state with
      | Done | Failed _ -> ()
      | Active | Parked _ | Blocked_stmt _ | Want_commit -> s.state <- Failed reason)
    victims

(* Evaluate all parked queries together; deliver answers. *)
and evaluate_parked hub =
  let parked =
    List.filter_map
      (fun s ->
        match s.state with
        | Parked query -> Some (s, query)
        | _ -> None)
      hub.sessions
  in
  if parked <> [] then begin
    let entries =
      List.filter_map
        (fun (s, query) ->
          let access =
            Ent_txn.Engine.access hub.engine s.txn ~grounding:true
              ~lock_reads:hub.isolation.lock_grounding_reads ()
          in
          match Ground.compute ~access ~env:s.env query with
          | groundings -> Some (s.id, query, groundings)
          | exception Ent_txn.Engine.Blocked _ -> None
          | exception Ent_txn.Engine.Deadlock_victim _ ->
            abort_group hub s "deadlock during grounding";
            None
          | exception Ground.Ground_error msg ->
            abort_group hub s msg;
            None)
        parked
    in
    let results = Coordinate.evaluate entries in
    let answered =
      List.filter_map
        (fun (s, _) ->
          match List.assoc_opt s.id results with
          | Some (Coordinate.Answered g) -> Some (s, g)
          | Some Coordinate.Empty ->
            (* success with empty answer: deliver nothing, resume *)
            (match s.state with
            | Parked query ->
              List.iter
                (fun (var, _) -> Hashtbl.replace s.env var Ent_storage.Value.Null)
                query.binds
            | _ -> ());
            s.state <- Active;
            None
          | Some Coordinate.No_partner | None -> None)
        parked
    in
    (* one entanglement event per answered component, as in the batch
       scheduler; here components are approximated by the full answered
       set of one evaluation round, which is exact for pairwise
       coordination and conservative otherwise *)
    if answered <> [] then begin
      let event = hub.next_event in
      hub.next_event <- event + 1;
      Group.join hub.groups (List.map (fun (s, _) -> s.id) answered);
      Ent_txn.Engine.log_entangle_group hub.engine ~event
        ~members:(List.map (fun (s, _) -> s.txn) answered);
      let tag =
        List.fold_left min max_int (List.map (fun (s, _) -> s.id) answered)
      in
      List.iter
        (fun (s, _) ->
          Ent_txn.Engine.set_lock_group hub.engine ~txn:s.txn ~group:tag)
        answered;
      List.iter
        (fun (s, (g : Ground.grounding)) ->
          (match s.state with
          | Parked query ->
            let own =
              match g.g_head with
              | (_, values) :: _ -> Some values
              | [] -> None
            in
            List.iter
              (fun (var, pos) ->
                let value =
                  match own with
                  | Some vs when pos < List.length vs -> List.nth vs pos
                  | _ -> Ent_storage.Value.Null
                in
                Hashtbl.replace s.env var value)
              query.binds
          | _ -> ());
          s.received <- g.g_head @ s.received;
          s.state <- Active)
        answered
    end
  end

(* Try to commit every group whose members all want to commit. *)
let try_commits hub =
  List.iter
    (fun s ->
      if s.state = Want_commit then begin
        let members =
          if hub.isolation.group_commit then group_members hub s else [ s ]
        in
        let all_want =
          List.for_all (fun m -> m.state = Want_commit) members
        in
        if all_want then
          match Ent_txn.Engine.violated_constraint hub.engine with
          | Some name ->
            Ent_txn.Engine.abort_group hub.engine (List.map (fun m -> m.txn) members);
            List.iter
              (fun m -> m.state <- Failed ("constraint violated: " ^ name))
              members
          | None ->
            List.iter
              (fun m ->
                Ent_txn.Engine.commit hub.engine m.txn;
                m.state <- Done)
              members
      end)
    hub.sessions

let reply_of_state session =
  match session.state with
  | Active -> Answered session.received
  | Parked _ -> Parked
  | Blocked_stmt _ -> Blocked
  | Want_commit -> Commit_pending
  | Done -> Committed
  | Failed reason -> Aborted reason

let run_classical session stmt =
  let hub = session.hub in
  let sp = Ent_txn.Engine.savepoint hub.engine session.txn in
  let access =
    Ent_txn.Engine.access hub.engine session.txn ~grounding:false
      ~lock_reads:hub.isolation.lock_classical_reads ()
  in
  match Ent_sql.Eval.exec_stmt access session.env stmt with
  | Ent_sql.Eval.Rows rows -> Rows rows
  | Ent_sql.Eval.Affected n -> Affected n
  | Ent_sql.Eval.Created -> Affected 0
  | exception Ent_txn.Engine.Blocked _ ->
    Ent_txn.Engine.rollback_to hub.engine session.txn sp;
    session.state <- Blocked_stmt stmt;
    Blocked
  | exception Ent_txn.Engine.Deadlock_victim _ ->
    abort_group hub session "deadlock";
    reply_of_state session
  | exception Ent_sql.Eval.Eval_error msg ->
    abort_group hub session msg;
    reply_of_state session

let execute session input =
  let hub = session.hub in
  (match session.state with
  | Done | Failed _ ->
    invalid_arg "Interactive.execute: session already finished"
  | Want_commit -> invalid_arg "Interactive.execute: commit pending"
  | Parked _ -> invalid_arg "Interactive.execute: waiting at an entangled query (poll instead)"
  | Blocked_stmt _ | Active -> ());
  match Ent_sql.Parser.parse_stmt input with
  | exception Ent_sql.Parser.Parse_error msg ->
    abort_group hub session ("parse error: " ^ msg);
    reply_of_state session
  | Ent_sql.Ast.Rollback ->
    abort_group hub session "rolled back";
    (* the caller asked for it, so report it as a plain abort *)
    Aborted "rolled back"
  | Ent_sql.Ast.Entangled e -> (
    match Translate.of_ast ~env:session.env e with
    | exception (Translate.Translate_error msg | Ir.Unsafe msg) ->
      abort_group hub session msg;
      reply_of_state session
    | query ->
      session.state <- Parked query;
      session.received <- [];
      evaluate_parked hub;
      (match session.state with
      | Active -> Answered session.received
      | _ -> reply_of_state session))
  | stmt ->
    session.state <- Active;
    run_classical session stmt

let poll session =
  let hub = session.hub in
  match session.state with
  | Parked _ ->
    evaluate_parked hub;
    reply_of_state session
  | Blocked_stmt stmt ->
    session.state <- Active;
    run_classical session stmt
  | Want_commit ->
    try_commits hub;
    reply_of_state session
  | Active | Done | Failed _ -> reply_of_state session

let commit session =
  (match session.state with
  | Active -> session.state <- Want_commit
  | Want_commit | Done | Failed _ -> ()
  | Parked _ | Blocked_stmt _ ->
    invalid_arg "Interactive.commit: statement still in progress");
  try_commits session.hub;
  reply_of_state session

let cancel session = abort_group session.hub session "cancelled"
