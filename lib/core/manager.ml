open Ent_storage

type t = {
  engine : Ent_txn.Engine.t;
  scheduler : Scheduler.t;
}

let create_with_engine ?config engine =
  { engine; scheduler = Scheduler.create ?config engine }

let create ?(wal = true) ?config () =
  let catalog = Catalog.create () in
  let engine = Ent_txn.Engine.create ~wal catalog in
  create_with_engine ?config engine

let engine t = t.engine
let scheduler t = t.scheduler
let catalog t = Ent_txn.Engine.catalog t.engine

let define_table t name columns =
  let schema =
    Schema.make (List.map (fun (name, ty) -> { Schema.name; ty }) columns)
  in
  ignore (Ent_txn.Engine.create_table t.engine name schema)

let load_row t name values =
  ignore (Ent_txn.Engine.load t.engine name (Array.of_list values))

let add_index t name columns =
  let table = Catalog.find_exn (catalog t) name in
  let schema = Table.schema table in
  Table.add_index table
    ~positions:(List.map (Schema.index_of schema) columns)

let add_constraint t name predicate =
  Ent_txn.Engine.add_constraint t.engine ~name predicate

let observe t ~on_event ~on_entangle =
  Ent_txn.Engine.add_on_event t.engine on_event;
  Scheduler.add_on_entangle t.scheduler on_entangle

let submit t program = Scheduler.submit t.scheduler program
let submit_string t ?label input = submit t (Program.of_string ?label input)
let drain t = Scheduler.drain t.scheduler
let run_once t = Scheduler.run_once t.scheduler
let outcome t id = Scheduler.outcome t.scheduler id
let results t = Scheduler.results t.scheduler
let answers_of t id = Scheduler.answers_of t.scheduler id
let now t = Scheduler.now t.scheduler
let advance_time t seconds = Scheduler.advance_time t.scheduler seconds
let stats t = Scheduler.stats t.scheduler

let query t input =
  match Ent_sql.Parser.parse_stmt input with
  | Ent_sql.Ast.Select sel ->
    Ent_sql.Eval.select_rows
      (Ent_sql.Eval.direct_access (catalog t))
      (Ent_sql.Eval.fresh_env ()) sel
  | _ -> invalid_arg "Manager.query: expected a SELECT"

let recover_records ?config records =
  let engine, analysis = Ent_txn.Engine.recover records in
  let fresh = { engine; scheduler = Scheduler.create ?config engine } in
  List.iter
    (fun serialized ->
      ignore (Scheduler.submit fresh.scheduler (Program.of_serialized serialized)))
    analysis.pool;
  fresh

let checkpoint_to_file t path =
  match Ent_txn.Engine.log t.engine with
  | None -> invalid_arg "Manager.checkpoint_to_file: system has no WAL"
  | Some wal ->
    Ent_txn.Engine.checkpoint t.engine;
    (* logged after the checkpoint so it survives the compaction *)
    Ent_txn.Engine.log_pool_snapshot t.engine
      (List.map Program.to_string (Scheduler.dormant_programs t.scheduler));
    Ent_txn.Wal.compact wal;
    Ent_txn.Wal.save wal path

let recover_from_file ?config path =
  recover_records ?config (Ent_txn.Wal.records (Ent_txn.Wal.load path))

let crash_and_recover t =
  match Ent_txn.Engine.log t.engine with
  | None -> invalid_arg "Manager.crash_and_recover: system has no WAL"
  | Some wal ->
    recover_records
      ~config:(Scheduler.config t.scheduler)
      (Ent_txn.Wal.crash_records wal)
