module Obs = Ent_obs.Obs
module Fault = Ent_fault.Injector

(* Injection points: a whole coordination round can be abandoned by
   the middleware, or individual participants can drop out mid-round
   (a partner disconnecting between grounding and matching). Both
   resolve to No_partner, sending the affected transactions back to
   the dormant pool. *)
let s_round_abort = Fault.site "entangle.coordinate.round_abort"
let s_partner_drop = Fault.site "entangle.coordinate.partner_drop"

let m_evaluations = Obs.counter "entangle.coordinate.evaluations"
let m_nodes = Obs.counter "entangle.coordinate.nodes_expanded"
let m_answered = Obs.counter "entangle.coordinate.answered"
let m_empty = Obs.counter "entangle.coordinate.empty"
let m_no_partner = Obs.counter "entangle.coordinate.no_partner"
let m_latency = Obs.histogram "entangle.coordinate.match_latency_us"

type outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

(* --- structural participation (Appendix B) --- *)

(* Fixpoint: repeatedly drop queries having a postcondition pattern
   that unifies with no remaining query's head pattern. Dropped
   queries are the No_partner ones; the criterion only looks at query
   structure, never at data, as Appendix B requires. *)
let structurally_blocked queries =
  let alive = Hashtbl.create 16 in
  List.iter (fun (qid, _) -> Hashtbl.replace alive qid true) queries;
  let heads_of_alive () =
    List.concat_map
      (fun (qid, (q : Ir.t)) -> if Hashtbl.find alive qid then q.head else [])
      queries
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let heads = heads_of_alive () in
    List.iter
      (fun (qid, (q : Ir.t)) ->
        if Hashtbl.find alive qid then
          let ok =
            List.for_all
              (fun post -> List.exists (Ir.unifiable post) heads)
              q.post
          in
          if not ok then begin
            Hashtbl.replace alive qid false;
            changed := true
          end)
      queries
  done;
  List.filter_map
    (fun (qid, _) -> if Hashtbl.find alive qid then None else Some qid)
    queries

(* --- coordination search --- *)

module Atom_tbl = Hashtbl

let evaluate ?(budget = 200_000) queries =
  Obs.incr m_evaluations;
  if Ent_obs.Event.logging () then
    Ent_obs.Event.emit
      (Ent_obs.Event.Coord_round
         { participants = List.map (fun (qid, _, _) -> qid) queries });
  let t_start = Ent_obs.Clock.monotonic () in
  let dropped =
    if Fault.drops s_round_abort then List.map (fun (qid, _, _) -> qid) queries
    else
      List.filter_map
        (fun (qid, _, _) -> if Fault.drops s_partner_drop then Some qid else None)
        queries
  in
  let live =
    List.filter (fun (qid, _, _) -> not (List.mem qid dropped)) queries
  in
  let blocked = structurally_blocked (List.map (fun (q, ir, _) -> (q, ir)) live) in
  let blocked = dropped @ blocked in
  let participants =
    List.filter (fun (qid, _, _) -> not (List.mem qid blocked)) live
  in
  (* Index every grounding by each of its head atoms. *)
  let head_index : (Ir.ground_atom, (int * Ground.grounding) list) Atom_tbl.t =
    Atom_tbl.create 256
  in
  List.iter
    (fun (qid, _, groundings) ->
      List.iter
        (fun (g : Ground.grounding) ->
          List.iter
            (fun atom ->
              let existing =
                Option.value ~default:[] (Atom_tbl.find_opt head_index atom)
              in
              Atom_tbl.replace head_index atom ((qid, g) :: existing))
            g.g_head)
        groundings)
    participants;
  let assignment : (int, Ground.grounding) Hashtbl.t = Hashtbl.create 16 in
  let provided : (Ir.ground_atom, int) Hashtbl.t = Hashtbl.create 64 in
  let provide atom =
    Hashtbl.replace provided atom
      (1 + Option.value ~default:0 (Hashtbl.find_opt provided atom))
  in
  let unprovide atom =
    match Hashtbl.find_opt provided atom with
    | Some 1 -> Hashtbl.remove provided atom
    | Some n -> Hashtbl.replace provided atom (n - 1)
    | None -> ()
  in
  let nodes = ref 0 in
  (* Try to cover every atom on the agenda by (possibly) assigning
     groundings to so-far-unassigned queries. Undoes its own side
     effects on failure. *)
  let rec satisfy agenda =
    incr nodes;
    if !nodes > budget then false
    else
      match agenda with
      | [] -> true
      | atom :: rest ->
        if Hashtbl.mem provided atom then satisfy rest
        else
          let candidates =
            List.rev (Option.value ~default:[] (Atom_tbl.find_opt head_index atom))
          in
          let try_candidate (qid, g) =
            match Hashtbl.find_opt assignment qid with
            | Some g' -> g' == g && satisfy rest
            (* an assigned query provides its heads already, so if g'==g
               the atom would have been in [provided]; this branch only
               matters when the candidate equals the assignment *)
            | None ->
              Hashtbl.replace assignment qid g;
              List.iter provide g.g_head;
              if satisfy (g.g_post @ rest) then true
              else begin
                List.iter unprovide g.g_head;
                Hashtbl.remove assignment qid;
                false
              end
          in
          List.exists try_candidate candidates
  in
  (* Greedy seeding: answer queries in submission order; each success
     commits its (closed) partial assignment. *)
  List.iter
    (fun (qid, _, groundings) ->
      if not (Hashtbl.mem assignment qid) then begin
        nodes := 0;
        let try_grounding (g : Ground.grounding) =
          Hashtbl.replace assignment qid g;
          List.iter provide g.g_head;
          if satisfy g.g_post then true
          else begin
            List.iter unprovide g.g_head;
            Hashtbl.remove assignment qid;
            false
          end
        in
        ignore (List.exists try_grounding groundings);
        Obs.incr ~n:!nodes m_nodes
      end)
    participants;
  let results =
    List.map
      (fun (qid, _, _) ->
        if List.mem qid blocked then (qid, No_partner)
        else
          match Hashtbl.find_opt assignment qid with
          | Some g -> (qid, Answered g)
          | None -> (qid, Empty))
      queries
  in
  List.iter
    (fun (_, outcome) ->
      Obs.incr
        (match outcome with
        | Answered _ -> m_answered
        | Empty -> m_empty
        | No_partner -> m_no_partner))
    results;
  Obs.observe m_latency (1e6 *. (Ent_obs.Clock.monotonic () -. t_start));
  results
