module Obs = Ent_obs.Obs
module Fault = Ent_fault.Injector

(* Injection points: a whole coordination round can be abandoned by
   the middleware, or individual participants can drop out mid-round
   (a partner disconnecting between grounding and matching). Both
   resolve to No_partner, sending the affected transactions back to
   the dormant pool. *)
let s_round_abort = Fault.site "entangle.coordinate.round_abort"
let s_partner_drop = Fault.site "entangle.coordinate.partner_drop"

let m_evaluations = Obs.counter "entangle.coordinate.evaluations"
let m_nodes = Obs.counter "entangle.coordinate.nodes_expanded"
let m_answered = Obs.counter "entangle.coordinate.answered"
let m_empty = Obs.counter "entangle.coordinate.empty"
let m_no_partner = Obs.counter "entangle.coordinate.no_partner"

(* Match latency is wall-clock and therefore nondeterministic; it is
   only observed when span tracing is on (like spans themselves), so
   default runs stay byte-identical across reruns. The histogram is
   still registered eagerly: a count-0 summary is deterministic and
   keeps the metric discoverable. *)
let m_latency = Obs.histogram "entangle.coordinate.match_latency_us"

(* Parallel-path metrics, interned lazily so deterministic runs
   (runner = None, which never calls [evaluate_parallel]) keep their
   metric snapshots byte-identical to the sequential binary. Forced on
   the coordinator only. *)
let m_components = lazy (Obs.counter "entangle.coordinate.components")

let m_component_size =
  lazy (Obs.histogram "entangle.coordinate.component_size")

type outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

let sig_of (a : Ir.atom) = (a.rel, List.length a.args)

(* --- structural participation (Appendix B) --- *)

(* Fixpoint: repeatedly drop queries having a postcondition pattern
   that unifies with no remaining query's head pattern. Dropped
   queries are the No_partner ones; the criterion only looks at query
   structure, never at data, as Appendix B requires.

   Maintained incrementally: each postcondition keeps a count of the
   alive heads it unifies with (candidates narrowed by (rel, arity)
   buckets); when a query dies its heads decrement the counts of the
   posts they supported, and a count reaching zero kills that post's
   owner in turn (worklist). Total work is bounded by the number of
   unifiable (post, head) pairs, instead of pairs × fixpoint rounds.

   The tables are module-level scratch, cleared (not re-allocated) at
   the start of every call: [Hashtbl.clear] keeps the bucket arrays, so
   a steady-state round allocates no fresh tables and capacity is
   bounded by the largest round seen. Every caller runs on the
   coordinator, so sharing the scratch is safe. *)
let posts_by_sig : (string * int, (int * Ir.atom * int ref) list ref) Hashtbl.t
    =
  Hashtbl.create 64

let sb_alive : (int, bool) Hashtbl.t = Hashtbl.create 64
let sb_heads : (int, Ir.atom list) Hashtbl.t = Hashtbl.create 64

let structurally_blocked queries =
  Hashtbl.clear posts_by_sig;
  Hashtbl.clear sb_alive;
  Hashtbl.clear sb_heads;
  (* posts bucketed by signature, as (owner qid, support count ref) *)
  let bucket s =
    match Hashtbl.find_opt posts_by_sig s with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add posts_by_sig s b;
      b
  in
  List.iter
    (fun (qid, (q : Ir.t)) ->
      Hashtbl.replace sb_alive qid true;
      Hashtbl.replace sb_heads qid q.head;
      List.iter
        (fun post ->
          let b = bucket (sig_of post) in
          b := (qid, post, ref 0) :: !b)
        q.post)
    queries;
  (* initial support: every (post, head) unifiable pair, same-signature
     candidates only *)
  List.iter
    (fun (_, (q : Ir.t)) ->
      List.iter
        (fun head ->
          match Hashtbl.find_opt posts_by_sig (sig_of head) with
          | None -> ()
          | Some b ->
            List.iter
              (fun (_, post, count) ->
                if Ir.unifiable post head then incr count)
              !b)
        q.head)
    queries;
  let worklist = Queue.create () in
  let kill qid =
    if Hashtbl.find sb_alive qid then begin
      Hashtbl.replace sb_alive qid false;
      Queue.add qid worklist
    end
  in
  Hashtbl.iter
    (fun _ b ->
      List.iter (fun (qid, _, count) -> if !count = 0 then kill qid) !b)
    posts_by_sig;
  while not (Queue.is_empty worklist) do
    let dead = Queue.pop worklist in
    List.iter
      (fun head ->
        match Hashtbl.find_opt posts_by_sig (sig_of head) with
        | None -> ()
        | Some b ->
          List.iter
            (fun (qid, post, count) ->
              if Hashtbl.find sb_alive qid && Ir.unifiable post head then begin
                decr count;
                if !count = 0 then kill qid
              end)
            !b)
      (Hashtbl.find sb_heads dead)
  done;
  List.filter_map
    (fun (qid, _) -> if Hashtbl.find sb_alive qid then None else Some qid)
    queries

(* --- signature-connectivity partition --- *)

(* Two queries can only interact during the search through ground
   atoms, and a ground atom fixes its (rel, arity) signature; grounding
   preserves the signature of the pattern it came from. So queries that
   share no signature — transitively, across head and postcondition
   atoms — can never provide for, block, or compete with one another:
   their head indexes, provided sets and assignments are disjoint.
   Union-find over the signatures of each query's head+post atoms
   therefore yields components whose searches compose exactly: running
   the search per component visits the same nodes and commits the same
   assignments as the sequential search over the whole set. *)
let partition entries =
  let parent : (string * int, string * int) Hashtbl.t = Hashtbl.create 32 in
  let rec find s =
    match Hashtbl.find_opt parent s with
    | None ->
      Hashtbl.replace parent s s;
      s
    | Some p when p = s -> s
    | Some p ->
      let r = find p in
      Hashtbl.replace parent s r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let sigs_of (_, (q : Ir.t), _) = List.map sig_of (q.head @ q.post) in
  List.iter
    (fun entry ->
      match sigs_of entry with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    entries;
  (* Bucket by component root. Entry order is preserved within each
     component and components are listed by first appearance, so the
     concatenation of the result is a stable permutation of the input
     (identical when there is a single component). *)
  let comps :
      (string * int, (int * Ir.t * Ground.grounding list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun entry ->
      let key =
        match sigs_of entry with
        | [] -> ("", -1) (* unreachable: validated queries have a head *)
        | s :: _ -> find s
      in
      match Hashtbl.find_opt comps key with
      | Some b -> b := entry :: !b
      | None ->
        let b = ref [ entry ] in
        Hashtbl.add comps key b;
        order := key :: !order)
    entries;
  List.rev_map (fun key -> List.rev !(Hashtbl.find comps key)) !order

(* --- coordination search --- *)

module Atom_tbl = Hashtbl

(* One backtracking search over a participant set. Pure apart from its
   own tables — event emission, faults, blocking and all metrics belong
   to the caller — so independent participant sets can be searched
   concurrently. Returns the committed assignment, the total nodes
   expanded across seeds, and whether any seed ran into the budget. *)
let search ~budget participants =
  (* Index every grounding by each of its head atoms. *)
  let head_index : (Ir.ground_atom, (int * Ground.grounding) list) Atom_tbl.t =
    Atom_tbl.create 256
  in
  List.iter
    (fun (qid, _, groundings) ->
      List.iter
        (fun (g : Ground.grounding) ->
          List.iter
            (fun atom ->
              let existing =
                Option.value ~default:[] (Atom_tbl.find_opt head_index atom)
              in
              Atom_tbl.replace head_index atom ((qid, g) :: existing))
            g.g_head)
        groundings)
    participants;
  let assignment : (int, Ground.grounding) Hashtbl.t = Hashtbl.create 16 in
  let provided : (Ir.ground_atom, int) Hashtbl.t = Hashtbl.create 64 in
  let provide atom =
    Hashtbl.replace provided atom
      (1 + Option.value ~default:0 (Hashtbl.find_opt provided atom))
  in
  let unprovide atom =
    match Hashtbl.find_opt provided atom with
    | Some 1 -> Hashtbl.remove provided atom
    | Some n -> Hashtbl.replace provided atom (n - 1)
    | None -> ()
  in
  let nodes = ref 0 in
  let total_nodes = ref 0 in
  let exhausted = ref false in
  (* Try to cover every atom on the agenda by (possibly) assigning
     groundings to so-far-unassigned queries. Undoes its own side
     effects on failure. *)
  let rec satisfy agenda =
    incr nodes;
    if !nodes > budget then begin
      exhausted := true;
      false
    end
    else
      match agenda with
      | [] -> true
      | atom :: rest ->
        if Hashtbl.mem provided atom then satisfy rest
        else
          let candidates =
            List.rev
              (Option.value ~default:[] (Atom_tbl.find_opt head_index atom))
          in
          let try_candidate (qid, g) =
            match Hashtbl.find_opt assignment qid with
            | Some g' -> g' == g && satisfy rest
            (* an assigned query provides its heads already, so if g'==g
               the atom would have been in [provided]; this branch only
               matters when the candidate equals the assignment *)
            | None ->
              Hashtbl.replace assignment qid g;
              List.iter provide g.g_head;
              if satisfy (g.g_post @ rest) then true
              else begin
                List.iter unprovide g.g_head;
                Hashtbl.remove assignment qid;
                false
              end
          in
          List.exists try_candidate candidates
  in
  (* Greedy seeding: answer queries in submission order; each success
     commits its (closed) partial assignment. *)
  List.iter
    (fun (qid, _, groundings) ->
      if not (Hashtbl.mem assignment qid) then begin
        nodes := 0;
        let try_grounding (g : Ground.grounding) =
          Hashtbl.replace assignment qid g;
          List.iter provide g.g_head;
          if satisfy g.g_post then true
          else begin
            List.iter unprovide g.g_head;
            Hashtbl.remove assignment qid;
            false
          end
        in
        ignore (List.exists try_grounding groundings);
        total_nodes := !total_nodes + !nodes
      end)
    participants;
  (assignment, !total_nodes, !exhausted)

(* Round prelude shared by both entry points: count the round, log it,
   apply fault drops, and run the structural-participation check.
   Returns the blocked set (dropped ∪ structurally blocked) and the
   surviving participants, in submission order. *)
let round_prelude queries =
  Obs.incr m_evaluations;
  if Ent_obs.Event.logging () then
    Ent_obs.Event.emit
      (Ent_obs.Event.Coord_round
         { participants = List.map (fun (qid, _, _) -> qid) queries });
  let dropped =
    if Fault.drops s_round_abort then List.map (fun (qid, _, _) -> qid) queries
    else
      List.filter_map
        (fun (qid, _, _) ->
          if Fault.drops s_partner_drop then Some qid else None)
        queries
  in
  let set_of ids =
    let set = Hashtbl.create (List.length ids) in
    List.iter (fun id -> Hashtbl.replace set id ()) ids;
    set
  in
  let dropped_set = set_of dropped in
  let live =
    List.filter (fun (qid, _, _) -> not (Hashtbl.mem dropped_set qid)) queries
  in
  let blocked =
    structurally_blocked (List.map (fun (q, ir, _) -> (q, ir)) live)
  in
  let blocked_set = set_of (dropped @ blocked) in
  let participants =
    List.filter (fun (qid, _, _) -> not (Hashtbl.mem blocked_set qid)) live
  in
  (blocked_set, participants)

(* Classification, outcome counters and (tracing-gated) wall-clock
   match latency, shared by both entry points. *)
let round_postlude ~t_start ~blocked_set ~assignment queries =
  let results =
    List.map
      (fun (qid, _, _) ->
        if Hashtbl.mem blocked_set qid then (qid, No_partner)
        else
          match Hashtbl.find_opt assignment qid with
          | Some g -> (qid, Answered g)
          | None -> (qid, Empty))
      queries
  in
  List.iter
    (fun (_, outcome) ->
      Obs.incr
        (match outcome with
        | Answered _ -> m_answered
        | Empty -> m_empty
        | No_partner -> m_no_partner))
    results;
  if Obs.tracing () then
    Obs.observe m_latency (1e6 *. (Ent_obs.Clock.monotonic () -. t_start));
  results

let evaluate ?(budget = 200_000) queries =
  let t_start = Ent_obs.Clock.monotonic () in
  let blocked_set, participants = round_prelude queries in
  let assignment, total_nodes, _exhausted = search ~budget participants in
  Obs.incr ~n:total_nodes m_nodes;
  round_postlude ~t_start ~blocked_set ~assignment queries

let evaluate_parallel ?(budget = 200_000) ~runner queries =
  let t_start = Ent_obs.Clock.monotonic () in
  let blocked_set, participants = round_prelude queries in
  let comps = Array.of_list (partition participants) in
  let n_comps = Array.length comps in
  if n_comps > 0 then begin
    Obs.incr ~n:n_comps (Lazy.force m_components);
    Array.iter
      (fun c ->
        Obs.observe (Lazy.force m_component_size)
          (float_of_int (List.length c)))
      comps
  end;
  (* Pass 1: each component gets the sequential per-seed budget, so as
     long as no seed exhausts it this is exactly the sequential search
     (same assignments, same node counts), just spread over the pool.
     The placeholder tuple is overwritten for every index. *)
  let results = Array.make n_comps (Hashtbl.create 1, 0, false) in
  Ent_par.Pool.run_indexed runner n_comps (fun i ->
      results.(i) <- search ~budget comps.(i));
  (* Pass 2 — budget redistribution: components that ran into a seed
     budget rerun with the round's unspent budget split evenly among
     them. The bonus depends only on aggregate node counts, which are
     deterministic given the input — never on domain scheduling — so
     parallel rounds stay reproducible. *)
  let pass1_nodes =
    Array.fold_left (fun acc (_, n, _) -> acc + n) 0 results
  in
  let unspent =
    max 0 ((List.length participants * budget) - pass1_nodes)
  in
  let exhausted =
    Array.to_list results
    |> List.mapi (fun i (_, _, ex) -> (i, ex))
    |> List.filter_map (fun (i, ex) -> if ex then Some i else None)
  in
  let rerun_nodes = ref 0 in
  (match exhausted with
  | [] -> ()
  | _ when unspent = 0 -> ()
  | idxs ->
    let bonus = unspent / List.length idxs in
    let arr = Array.of_list idxs in
    Ent_par.Pool.run_indexed runner (Array.length arr) (fun j ->
        let i = arr.(j) in
        results.(i) <- search ~budget:(budget + bonus) comps.(i));
    rerun_nodes :=
      List.fold_left
        (fun acc i ->
          let _, n, _ = results.(i) in
          acc + n)
        0 idxs);
  Obs.incr ~n:(pass1_nodes + !rerun_nodes) m_nodes;
  let assignment : (int, Ground.grounding) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (asg, _, _) ->
      Hashtbl.iter (fun qid g -> Hashtbl.replace assignment qid g) asg)
    results;
  round_postlude ~t_start ~blocked_set ~assignment queries
