module Obs = Ent_obs.Obs
module Fault = Ent_fault.Injector

(* Injection points: a whole coordination round can be abandoned by
   the middleware, or individual participants can drop out mid-round
   (a partner disconnecting between grounding and matching). Both
   resolve to No_partner, sending the affected transactions back to
   the dormant pool. *)
let s_round_abort = Fault.site "entangle.coordinate.round_abort"
let s_partner_drop = Fault.site "entangle.coordinate.partner_drop"

let m_evaluations = Obs.counter "entangle.coordinate.evaluations"
let m_nodes = Obs.counter "entangle.coordinate.nodes_expanded"
let m_answered = Obs.counter "entangle.coordinate.answered"
let m_empty = Obs.counter "entangle.coordinate.empty"
let m_no_partner = Obs.counter "entangle.coordinate.no_partner"
let m_latency = Obs.histogram "entangle.coordinate.match_latency_us"

type outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

(* --- structural participation (Appendix B) --- *)

(* Fixpoint: repeatedly drop queries having a postcondition pattern
   that unifies with no remaining query's head pattern. Dropped
   queries are the No_partner ones; the criterion only looks at query
   structure, never at data, as Appendix B requires.

   Maintained incrementally: each postcondition keeps a count of the
   alive heads it unifies with (candidates narrowed by (rel, arity)
   buckets); when a query dies its heads decrement the counts of the
   posts they supported, and a count reaching zero kills that post's
   owner in turn (worklist). Total work is bounded by the number of
   unifiable (post, head) pairs, instead of pairs × fixpoint rounds. *)
let structurally_blocked queries =
  let sig_of (a : Ir.atom) = (a.rel, List.length a.args) in
  (* posts bucketed by signature, as (owner qid, support count ref) *)
  let posts_by_sig : (string * int, (int * Ir.atom * int ref) list ref) Hashtbl.t
      =
    Hashtbl.create 16
  in
  let bucket s =
    match Hashtbl.find_opt posts_by_sig s with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add posts_by_sig s b;
      b
  in
  let alive = Hashtbl.create 16 in
  List.iter
    (fun (qid, (q : Ir.t)) ->
      Hashtbl.replace alive qid true;
      List.iter
        (fun post ->
          let b = bucket (sig_of post) in
          b := (qid, post, ref 0) :: !b)
        q.post)
    queries;
  (* initial support: every (post, head) unifiable pair, same-signature
     candidates only *)
  List.iter
    (fun (_, (q : Ir.t)) ->
      List.iter
        (fun head ->
          match Hashtbl.find_opt posts_by_sig (sig_of head) with
          | None -> ()
          | Some b ->
            List.iter
              (fun (_, post, count) ->
                if Ir.unifiable post head then incr count)
              !b)
        q.head)
    queries;
  let worklist = Queue.create () in
  let kill qid =
    if Hashtbl.find alive qid then begin
      Hashtbl.replace alive qid false;
      Queue.add qid worklist
    end
  in
  Hashtbl.iter
    (fun _ b ->
      List.iter (fun (qid, _, count) -> if !count = 0 then kill qid) !b)
    posts_by_sig;
  let heads_of = Hashtbl.create 16 in
  List.iter
    (fun (qid, (q : Ir.t)) -> Hashtbl.replace heads_of qid q.head)
    queries;
  while not (Queue.is_empty worklist) do
    let dead = Queue.pop worklist in
    List.iter
      (fun head ->
        match Hashtbl.find_opt posts_by_sig (sig_of head) with
        | None -> ()
        | Some b ->
          List.iter
            (fun (qid, post, count) ->
              if Hashtbl.find alive qid && Ir.unifiable post head then begin
                decr count;
                if !count = 0 then kill qid
              end)
            !b)
      (Hashtbl.find heads_of dead)
  done;
  List.filter_map
    (fun (qid, _) -> if Hashtbl.find alive qid then None else Some qid)
    queries

(* --- coordination search --- *)

module Atom_tbl = Hashtbl

let evaluate ?(budget = 200_000) queries =
  Obs.incr m_evaluations;
  if Ent_obs.Event.logging () then
    Ent_obs.Event.emit
      (Ent_obs.Event.Coord_round
         { participants = List.map (fun (qid, _, _) -> qid) queries });
  let t_start = Ent_obs.Clock.monotonic () in
  let dropped =
    if Fault.drops s_round_abort then List.map (fun (qid, _, _) -> qid) queries
    else
      List.filter_map
        (fun (qid, _, _) -> if Fault.drops s_partner_drop then Some qid else None)
        queries
  in
  let set_of ids =
    let set = Hashtbl.create (List.length ids) in
    List.iter (fun id -> Hashtbl.replace set id ()) ids;
    set
  in
  let dropped_set = set_of dropped in
  let live =
    List.filter (fun (qid, _, _) -> not (Hashtbl.mem dropped_set qid)) queries
  in
  let blocked = structurally_blocked (List.map (fun (q, ir, _) -> (q, ir)) live) in
  let blocked_set = set_of (dropped @ blocked) in
  let participants =
    List.filter (fun (qid, _, _) -> not (Hashtbl.mem blocked_set qid)) live
  in
  (* Index every grounding by each of its head atoms. *)
  let head_index : (Ir.ground_atom, (int * Ground.grounding) list) Atom_tbl.t =
    Atom_tbl.create 256
  in
  List.iter
    (fun (qid, _, groundings) ->
      List.iter
        (fun (g : Ground.grounding) ->
          List.iter
            (fun atom ->
              let existing =
                Option.value ~default:[] (Atom_tbl.find_opt head_index atom)
              in
              Atom_tbl.replace head_index atom ((qid, g) :: existing))
            g.g_head)
        groundings)
    participants;
  let assignment : (int, Ground.grounding) Hashtbl.t = Hashtbl.create 16 in
  let provided : (Ir.ground_atom, int) Hashtbl.t = Hashtbl.create 64 in
  let provide atom =
    Hashtbl.replace provided atom
      (1 + Option.value ~default:0 (Hashtbl.find_opt provided atom))
  in
  let unprovide atom =
    match Hashtbl.find_opt provided atom with
    | Some 1 -> Hashtbl.remove provided atom
    | Some n -> Hashtbl.replace provided atom (n - 1)
    | None -> ()
  in
  let nodes = ref 0 in
  (* Try to cover every atom on the agenda by (possibly) assigning
     groundings to so-far-unassigned queries. Undoes its own side
     effects on failure. *)
  let rec satisfy agenda =
    incr nodes;
    if !nodes > budget then false
    else
      match agenda with
      | [] -> true
      | atom :: rest ->
        if Hashtbl.mem provided atom then satisfy rest
        else
          let candidates =
            List.rev (Option.value ~default:[] (Atom_tbl.find_opt head_index atom))
          in
          let try_candidate (qid, g) =
            match Hashtbl.find_opt assignment qid with
            | Some g' -> g' == g && satisfy rest
            (* an assigned query provides its heads already, so if g'==g
               the atom would have been in [provided]; this branch only
               matters when the candidate equals the assignment *)
            | None ->
              Hashtbl.replace assignment qid g;
              List.iter provide g.g_head;
              if satisfy (g.g_post @ rest) then true
              else begin
                List.iter unprovide g.g_head;
                Hashtbl.remove assignment qid;
                false
              end
          in
          List.exists try_candidate candidates
  in
  (* Greedy seeding: answer queries in submission order; each success
     commits its (closed) partial assignment. *)
  List.iter
    (fun (qid, _, groundings) ->
      if not (Hashtbl.mem assignment qid) then begin
        nodes := 0;
        let try_grounding (g : Ground.grounding) =
          Hashtbl.replace assignment qid g;
          List.iter provide g.g_head;
          if satisfy g.g_post then true
          else begin
            List.iter unprovide g.g_head;
            Hashtbl.remove assignment qid;
            false
          end
        in
        ignore (List.exists try_grounding groundings);
        Obs.incr ~n:!nodes m_nodes
      end)
    participants;
  let results =
    List.map
      (fun (qid, _, _) ->
        if Hashtbl.mem blocked_set qid then (qid, No_partner)
        else
          match Hashtbl.find_opt assignment qid with
          | Some g -> (qid, Answered g)
          | None -> (qid, Empty))
      queries
  in
  List.iter
    (fun (_, outcome) ->
      Obs.incr
        (match outcome with
        | Answered _ -> m_answered
        | Empty -> m_empty
        | No_partner -> m_no_partner))
    results;
  Obs.observe m_latency (1e6 *. (Ent_obs.Clock.monotonic () -. t_start));
  results
