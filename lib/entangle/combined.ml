type outcome = Coordinate.outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

type combined = {
  member_ids : int list;
  constraints : ((int * int) * (int * int)) list;
}

(* All (provider query, head index) whose head pattern unifies with
   post pattern [post]. *)
let providers_of queries (post : Ir.atom) =
  List.concat_map
    (fun (qj, (q : Ir.t)) ->
      List.concat
        (List.mapi
           (fun hl head -> if Ir.unifiable post head then [ (qj, hl) ] else [])
           q.head))
    queries

let compile ?(max_matchings = 64) queries =
  (* Drop queries that cannot participate at all; what remains has at
     least one candidate provider for every postcondition. *)
  let blocked = Coordinate.structurally_blocked queries in
  let participants =
    List.filter (fun (qid, _) -> not (List.mem qid blocked)) queries
  in
  (* pattern-level component structure *)
  let uf = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt uf x with
    | None ->
      Hashtbl.replace uf x x;
      x
    | Some p when p = x -> x
    | Some p ->
      let root = find p in
      Hashtbl.replace uf x root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace uf ra rb
  in
  (* slots: (qid, post index, candidate providers) *)
  let slots =
    List.concat_map
      (fun (qid, (q : Ir.t)) ->
        List.mapi
          (fun pk post ->
            let candidates = providers_of participants post in
            List.iter (fun (qj, _) -> union qid qj) candidates;
            ((qid, pk), candidates))
          q.post)
      participants
  in
  List.iter (fun (qid, _) -> ignore (find qid)) participants;
  let components =
    let roots = Hashtbl.create 8 in
    List.iter
      (fun (qid, _) ->
        let r = find qid in
        let existing = Option.value ~default:[] (Hashtbl.find_opt roots r) in
        Hashtbl.replace roots r (qid :: existing))
      participants;
    Hashtbl.fold (fun _ members acc -> List.sort Int.compare members :: acc) roots []
    |> List.sort compare
  in
  (* Enumerate complete matchings per component, bounded. *)
  List.concat_map
    (fun member_ids ->
      let my_slots =
        List.filter (fun ((qid, _), _) -> List.mem qid member_ids) slots
      in
      let matchings = ref [] in
      let count = ref 0 in
      let rec enumerate chosen = function
        | [] ->
          if !count < max_matchings then begin
            incr count;
            matchings := List.rev chosen :: !matchings
          end
        | (slot, candidates) :: rest ->
          List.iter
            (fun candidate ->
              if !count < max_matchings then
                enumerate ((slot, candidate) :: chosen) rest)
            candidates
      in
      enumerate [] my_slots;
      List.rev_map
        (fun constraints -> { member_ids; constraints })
        !matchings
      |> List.rev)
    components

(* Check every constraint whose endpoints are both assigned. *)
let constraints_hold constraints assignment =
  List.for_all
    (fun ((qi, pk), (qj, hl)) ->
      match List.assoc_opt qi assignment, List.assoc_opt qj assignment with
      | Some (gi : Ground.grounding), Some (gj : Ground.grounding) ->
        List.nth gi.g_post pk = List.nth gj.g_head hl
      | _ -> true)
    constraints

let solve_combined ~budget combined groundings_of =
  (* Join member groundings in id order under the matching's equality
     constraints. Returns the first complete assignment. *)
  let steps = ref 0 in
  let rec go assignment = function
    | [] -> Some assignment
    | qid :: rest ->
      let rec try_groundings = function
        | [] -> None
        | g :: gs ->
          incr steps;
          if !steps > budget then None
          else
            let assignment' = (qid, g) :: assignment in
            if constraints_hold combined.constraints assignment' then
              match go assignment' rest with
              | Some solution -> Some solution
              | None -> try_groundings gs
            else try_groundings gs
      in
      try_groundings (groundings_of qid)
  in
  go [] combined.member_ids

let m_evaluations = Ent_obs.Obs.counter "entangle.combined.evaluations"

let evaluate ?(max_matchings = 64) queries =
  Ent_obs.Obs.incr m_evaluations;
  if Ent_obs.Event.logging () then
    Ent_obs.Event.emit
      (Ent_obs.Event.Coord_round
         { participants = List.map (fun (qid, _, _) -> qid) queries });
  (* Same injection points as the search strategy: both strategies
     must present identical failure semantics to the scheduler. *)
  let dropped =
    if Ent_fault.Injector.drops Coordinate.s_round_abort then
      List.map (fun (qid, _, _) -> qid) queries
    else
      List.filter_map
        (fun (qid, _, _) ->
          if Ent_fault.Injector.drops Coordinate.s_partner_drop then Some qid
          else None)
        queries
  in
  let live =
    List.filter (fun (qid, _, _) -> not (List.mem qid dropped)) queries
  in
  let patterns = List.map (fun (qid, ir, _) -> (qid, ir)) live in
  let blocked = Coordinate.structurally_blocked patterns in
  let blocked = dropped @ blocked in
  let combineds = compile ~max_matchings patterns in
  let groundings_of qid =
    match List.find_opt (fun (q, _, _) -> q = qid) live with
    | Some (_, _, gs) -> gs
    | None -> []
  in
  let assignment : (int, Ground.grounding) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun combined ->
      if List.for_all (fun qid -> not (Hashtbl.mem assignment qid)) combined.member_ids
      then
        match solve_combined ~budget:200_000 combined groundings_of with
        | Some solution ->
          List.iter (fun (qid, g) -> Hashtbl.replace assignment qid g) solution
        | None -> ())
    combineds;
  List.map
    (fun (qid, _, _) ->
      if List.mem qid blocked then (qid, No_partner)
      else
        match Hashtbl.find_opt assignment qid with
        | Some g -> (qid, Answered g)
        | None -> (qid, Empty))
    queries
