(** Dependency-tracked grounding cache.

    Every coordination round used to re-run {!Ground.compute} from
    scratch for every dormant entangled query, even though between
    rounds most of the database is untouched. This cache memoizes the
    expensive half of grounding — valuation enumeration — keyed by the
    query {e body} plus the host-variable bindings it references, so
    structurally identical queries issued by different transactions
    (the common case: per-instance tags live in the head/post, not the
    body) share one computation.

    Soundness rests on three pieces:

    - each miss records its {e read footprint} (tables scanned,
      [(positions, key)] point probes, [(position, bounds)] range
      probes) while the enumeration runs;
    - the storage layer gives every table a monotonic write version and
      a bounded per-write changelog ({!Ent_storage.Table.changes_since});
    - a cached entry is served only when, for every table it read,
      either the version is unchanged or no change since the recorded
      version intersects the footprint. Truncated changelogs, new
      indexes (plan changes) and dropped/re-created tables all
      invalidate conservatively.

    Grounding reads are quasi reads (§3.3.3): they take table-S locks
    and are re-validated by coordination rather than creating row-level
    read dependencies. A hit therefore replays the lock side effects
    through [touch] (same tables, first-read order) without re-reading
    any rows. *)

type t

(** [create catalog] makes an empty cache over [catalog]'s live
    tables. [max_entries] bounds the entry count (the cache resets
    wholesale when full). *)
val create : ?max_entries:int -> Ent_storage.Catalog.t -> t

(** [compute t ~access ~touch ~env query] returns [query]'s groundings
    and whether they were served from cache. On a miss the enumeration
    runs through [access] (recording the footprint); on a hit [touch]
    is called with the footprint's table names in first-read order so
    the caller can re-acquire grounding locks — it must raise (like the
    blocked/deadlocked access reads would) to veto the hit.

    [bypass] (default false) skips the cache entirely — no lookup, no
    insertion, no hit/miss accounting — and runs the enumeration fresh
    through [access]. Used for snapshot-isolation grounding, whose
    reads see an older snapshot than the live table versions the
    footprint validation is keyed to.
    @raise Ground.Ground_error and whatever [access]/[touch] raise. *)
val compute :
  t ->
  ?limit:int ->
  ?bypass:bool ->
  access:Ent_sql.Eval.access ->
  touch:(string list -> unit) ->
  env:Ent_sql.Eval.env ->
  Ir.t ->
  Ground.grounding list * bool

(** (hits, misses, invalidations) since [create]. *)
val stats : t -> int * int * int

(** Live entry count. *)
val size : t -> int

(** Drop every cached entry (counters keep their values). *)
val clear : t -> unit
