(** Grounding of entangled queries (Appendix A).

    A grounding is the query with its variables replaced by constants
    following a valuation — an assignment of database values to
    variables that satisfies the body. Groundings identify the set of
    acceptable answers for one query in isolation; coordination then
    chooses among them.

    The body is evaluated through the caller's {!Ent_sql.Eval.access},
    so when the access comes from [Engine.access ~grounding:true] the
    reads are automatically table-S-locked and recorded as grounding
    reads. *)


type grounding = {
  g_head : Ir.ground_atom list;  (** the query's own answer tuples *)
  g_post : Ir.ground_atom list;  (** ground postconditions to be met by partners *)
}

exception Ground_error of string

module Valuation : Map.S with type key = string

(** A satisfying assignment of database values to body variables. *)
type valuation = Ent_storage.Value.t Valuation.t

(** Stage 1 of {!compute}: enumerate the valuations satisfying [body]
    under [env], in deterministic order. This is the half that reads
    the database — a pure function of (body, referenced host bindings,
    database state), which is what makes it cacheable ({!Gcache}).
    @raise Ground_error as {!compute}. *)
val valuations :
  ?limit:int ->
  access:Ent_sql.Eval.access ->
  env:Ent_sql.Eval.env ->
  Ent_sql.Ast.cond ->
  valuation list

(** Stage 2 of {!compute}: substitute valuations into the query's head
    and post atoms and de-duplicate, keeping first-seen order. Touches
    no data. *)
val groundings_of : Ir.t -> valuation list -> grounding list

(** [compute ~access ~env query] enumerates all groundings of [query]
    on the current database, in deterministic order, de-duplicated.
    [limit] caps the number of valuations explored (default 10_000).
    @raise Ground_error when the body is not evaluable left-to-right
    (a filter mentions a variable no binder binds). *)
val compute :
  ?limit:int ->
  access:Ent_sql.Eval.access ->
  env:Ent_sql.Eval.env ->
  Ir.t ->
  grounding list

val pp_grounding : Format.formatter -> grounding -> unit
