(** Coordination: answering a set of entangled queries together.

    Given each query's groundings, the evaluator searches for a
    coordinating set (Appendix A): at most one grounding per query such
    that the union of the chosen heads contains every chosen
    postcondition. Queries whose grounding is chosen are answered with
    their own head tuples; the others are classified by the
    database-independent criterion of Appendix B:

    - {!No_partner}: the query was not part of any combined evaluation —
      no query in the set has a head pattern unifying with one of its
      postcondition patterns (transitively closed). The transaction
      must wait and retry.
    - {!Empty}: the query participated in evaluation but the data
      offered no coordinated choice. This counts as success with an
      empty answer; the transaction proceeds. *)

type outcome =
  | Answered of Ground.grounding
  | Empty
  | No_partner

(** [evaluate queries] where each entry is
    [(qid, query, groundings)]. Deterministic: queries are tried in
    list order and groundings in their given order, so replaying the
    same input yields the same answers (the determinism assumption of
    §C.1). [budget] caps backtracking nodes per seed query (default
    200_000). Returns an outcome per qid, same order as the input. *)
val evaluate :
  ?budget:int ->
  (int * Ir.t * Ground.grounding list) list ->
  (int * outcome) list

(** [evaluate_parallel ~runner queries] answers the same queries as
    {!evaluate}, but first splits the participants into
    signature-connectivity components — queries can only provide for or
    block one another when their head/postcondition atoms share a
    (rel, arity) signature, transitively — and searches each component
    on the [runner] pool. Per-seed budgets make the first pass exactly
    the sequential search restricted to each component; components that
    exhaust a seed budget are rerun with the round's unspent budget
    split evenly among them (a deterministic function of the input, so
    parallel rounds stay reproducible). Whenever no seed exhausts its
    budget the result is identical to [evaluate] on the same input. *)
val evaluate_parallel :
  ?budget:int ->
  runner:Ent_par.Pool.t ->
  (int * Ir.t * Ground.grounding list) list ->
  (int * outcome) list

(** The signature-connectivity partition alone (exposed for tests):
    groups entries into independent components. Entry order is kept
    within each component; components are ordered by first
    appearance. *)
val partition :
  (int * Ir.t * Ground.grounding list) list ->
  (int * Ir.t * Ground.grounding list) list list

(** The structural participation check alone (exposed for tests):
    returns the qids that would be [No_partner]. *)
val structurally_blocked : (int * Ir.t) list -> int list

(** Fault-injection points, shared by both evaluation strategies.
    [s_round_abort] abandons a whole coordination round ([No_partner]
    for every query); [s_partner_drop] removes a single participant
    mid-round. Inert unless a fault plan is installed. *)
val s_round_abort : Ent_fault.Injector.site

val s_partner_drop : Ent_fault.Injector.site
