open Ent_storage
module Obs = Ent_obs.Obs

let m_hits = Obs.counter "entangle.gcache.hits"
let m_misses = Obs.counter "entangle.gcache.misses"
let m_invalidations = Obs.counter "entangle.gcache.invalidations"
let m_footprint = Obs.histogram "entangle.gcache.footprint"

(* One recorded read of a grounding computation. [Scan] covers the
   whole table; [Point]/[Range] are keyed sub-reads whose results can
   only change when a write touches a matching row. *)
type read =
  | Scan
  | Point of int list * Value.t list
  | Range of int * Ordered_index.bound * Ordered_index.bound

type table_entry = {
  te_name : string;
  te_table : Table.t;  (* physical identity at record time *)
  mutable te_version : int;
  te_reads : read list;
}

type entry = {
  e_valuations : Ground.valuation list;
  e_tables : table_entry list;  (* first-read order *)
}

(* Two grounding computations coincide iff body, the host bindings the
   body mentions, and the exploration limit coincide — the per-query
   head/post substitution happens after the cache. Keys are compared
   structurally ([Value.t] has no floats, so polymorphic equality and
   hashing are exact). *)
(* The fields are only ever read by the polymorphic hash/equality of
   the entries table, hence the unused-field waiver. *)
type key = {
  k_body : Ent_sql.Ast.cond;
  k_env : (string * Value.t option) list;  (* sorted by host-var name *)
  k_limit : int;
} [@@warning "-69"]

type t = {
  catalog : Catalog.t;
  entries : (key, entry) Hashtbl.t;
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  (* Guards [entries] and the counters: groundings for independent
     pending tasks run concurrently on worker domains. Validation and
     insertion happen under [mu]; the expensive part (valuation
     enumeration, lock acquisition via [touch]) runs outside it. *)
  mu : Mutex.t;
}

let create ?(max_entries = 4096) catalog =
  {
    catalog;
    entries = Hashtbl.create 64;
    max_entries;
    hits = 0;
    misses = 0;
    invalidations = 0;
    mu = Mutex.create ();
  }

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | v -> Mutex.unlock mu; v
  | exception e -> Mutex.unlock mu; raise e

let stats t = (t.hits, t.misses, t.invalidations)
let size t = Hashtbl.length t.entries

let clear t =
  Hashtbl.reset t.entries

(* --- host variables referenced by a body --- *)

let rec expr_hosts acc (e : Ent_sql.Ast.expr) =
  match e with
  | Lit _ | Col _ | Agg (_, None) -> acc
  | Host name -> name :: acc
  | Binop (_, a, b) -> expr_hosts (expr_hosts acc a) b
  | Agg (_, Some a) -> expr_hosts acc a

let rec cond_hosts acc (c : Ent_sql.Ast.cond) =
  match c with
  | True -> acc
  | Cmp (_, a, b) -> expr_hosts (expr_hosts acc a) b
  | And (a, b) | Or (a, b) -> cond_hosts (cond_hosts acc a) b
  | Not a -> cond_hosts acc a
  | In_select (exprs, sub) ->
    select_hosts (List.fold_left expr_hosts acc exprs) sub
  | In_list (e, values) -> List.fold_left expr_hosts (expr_hosts acc e) values
  | Between (e, lo, hi) -> expr_hosts (expr_hosts (expr_hosts acc e) lo) hi
  | In_answer (exprs, _) -> List.fold_left expr_hosts acc exprs

and select_hosts acc (sel : Ent_sql.Ast.select) =
  let acc =
    List.fold_left
      (fun acc (p : Ent_sql.Ast.proj) -> expr_hosts acc p.pexpr)
      acc sel.projs
  in
  let acc = cond_hosts acc sel.where in
  let acc = List.fold_left expr_hosts acc sel.group_by in
  List.fold_left (fun acc (e, _) -> expr_hosts acc e) acc sel.order_by

let key_of ~env ~limit body =
  let hosts = List.sort_uniq String.compare (cond_hosts [] body) in
  {
    k_body = body;
    k_env = List.map (fun name -> (name, Hashtbl.find_opt env name)) hosts;
    k_limit = limit;
  }

(* --- footprint recording --- *)

(* Wrap an access so every read path notes (table, read shape) before
   streaming. Reads are noted at sequence creation: an eager
   over-approximation, which is always sound. *)
let recording (access : Ent_sql.Eval.access) =
  let order = ref [] in
  let by_name : (string, read list ref) Hashtbl.t = Hashtbl.create 4 in
  let note name read =
    let reads =
      match Hashtbl.find_opt by_name name with
      | Some reads -> reads
      | None ->
        let reads = ref [] in
        Hashtbl.add by_name name reads;
        order := name :: !order;
        reads
    in
    if not (List.mem read !reads) then reads := read :: !reads
  in
  let raccess =
    {
      access with
      scan =
        (fun name ->
          note name Scan;
          access.scan name);
      lookup =
        (fun name ~positions key ->
          note name (Point (positions, key));
          access.lookup name ~positions key);
      range =
        (fun name ~position ~lo ~hi ->
          note name (Range (position, lo, hi));
          access.range name ~position ~lo ~hi);
    }
  in
  let finish catalog =
    List.rev_map
      (fun name ->
        match Catalog.find catalog name with
        | Some table ->
          {
            te_name = name;
            te_table = table;
            te_version = Table.version table;
            te_reads = !(Hashtbl.find by_name name);
          }
        | None ->
          (* the access resolved a name the catalog no longer has; only
             reachable through hostile interleaving — never cache it *)
          raise Exit)
      !order
  in
  (raccess, finish)

(* --- invalidation --- *)

let in_bounds ~lo ~hi v =
  (match lo with
  | Ordered_index.Unbounded -> true
  | Ordered_index.Inclusive b -> Value.compare v b >= 0
  | Ordered_index.Exclusive b -> Value.compare v b > 0)
  &&
  match hi with
  | Ordered_index.Unbounded -> true
  | Ordered_index.Inclusive b -> Value.compare v b <= 0
  | Ordered_index.Exclusive b -> Value.compare v b < 0

let read_touches_row read row =
  match read with
  | Scan -> true
  | Point (positions, key) ->
    List.equal Value.equal (List.map (fun i -> Tuple.get row i) positions) key
  | Range (position, lo, hi) -> in_bounds ~lo ~hi (Tuple.get row position)

let change_intersects reads (c : Table.change) =
  let side = function
    | None -> false
    | Some row -> List.exists (fun read -> read_touches_row read row) reads
  in
  side c.c_before || side c.c_after

let table_entry_valid t te =
  match Catalog.find t.catalog te.te_name with
  | Some table when table == te.te_table -> (
    Table.version table = te.te_version
    ||
    match Table.changes_since table te.te_version with
    | None -> false  (* changelog truncated or structural change *)
    | Some changes ->
      not (List.exists (change_intersects te.te_reads) changes))
  | _ -> false  (* dropped or re-created table *)

let entry_valid t entry = List.for_all (table_entry_valid t) entry.e_tables

(* After a successful validation, fast-forward the recorded versions so
   the next round does not re-scan the same (non-intersecting)
   changelog suffix. *)
let refresh entry =
  List.iter (fun te -> te.te_version <- Table.version te.te_table) entry.e_tables

(* --- the cache --- *)

(* Soundness under parallelism: groundings only read (table-S locks),
   and the scheduler grounds pending tasks in a phase of its own where
   no transaction is stepping, so a validated entry cannot be
   invalidated by a concurrent writer between validation and [touch]. *)
let compute t ?(limit = 10_000) ?(bypass = false) ~access ~touch ~env
    (query : Ir.t) =
  if bypass then
    (* Snapshot-isolation grounding: the footprint validation above is
       keyed to LIVE table versions, but the caller reads an older
       snapshot — neither serving nor populating the cache is sound.
       Run the enumeration fresh; [touch] is unused (snapshot reads
       take no locks). *)
    let vals = Ground.valuations ~limit ~access ~env query.body in
    (Ground.groundings_of query vals, false)
  else
  let key = key_of ~env ~limit query.body in
  let cached =
    with_mu t.mu (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some entry when entry_valid t entry ->
          refresh entry;
          t.hits <- t.hits + 1;
          Obs.incr m_hits;
          Some entry
        | found ->
          (match found with
          | Some _ ->
            Hashtbl.remove t.entries key;
            t.invalidations <- t.invalidations + 1;
            Obs.incr m_invalidations
          | None -> ());
          t.misses <- t.misses + 1;
          Obs.incr m_misses;
          None)
  in
  match cached with
  | Some entry ->
    (* reproduce the grounding-lock side effects before serving; may
       raise Blocked/Deadlock_victim exactly like a recomputation *)
    touch (List.map (fun te -> te.te_name) entry.e_tables);
    (Ground.groundings_of query entry.e_valuations, true)
  | None ->
    let raccess, finish = recording access in
    let vals = Ground.valuations ~limit ~access:raccess ~env query.body in
    (match finish t.catalog with
    | tables ->
      with_mu t.mu (fun () ->
          if Hashtbl.length t.entries >= t.max_entries then
            Hashtbl.reset t.entries;
          Hashtbl.replace t.entries key
            { e_valuations = vals; e_tables = tables };
          Obs.observe m_footprint
            (float_of_int
               (List.fold_left
                  (fun acc te -> acc + List.length te.te_reads)
                  0 tables)))
    | exception Exit -> ());
    (Ground.groundings_of query vals, false)
