open Ent_storage
module Obs = Ent_obs.Obs

let m_computes = Obs.counter "entangle.ground.computes"
let m_valuations = Obs.counter "entangle.ground.valuations"
let m_size = Obs.histogram "entangle.ground.size"

type grounding = {
  g_head : Ir.ground_atom list;
  g_post : Ir.ground_atom list;
}

exception Ground_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Ground_error s)) fmt

module Valuation = Map.Make (String)

(* Split the (already IN-ANSWER-free) body into a left-to-right list of
   conjuncts. *)
let rec conjuncts (c : Ent_sql.Ast.cond) =
  match c with
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | c -> [ c ]

let lookup_of valuation name = Valuation.find_opt name valuation

(* Extend [valuation] by unifying binding expressions with a row of
   subquery results. Returns None on mismatch. *)
let unify_row ~access ~env valuation exprs row =
  let exception Mismatch in
  try
    Some
      (List.fold_left2
         (fun acc (e : Ent_sql.Ast.expr) value ->
           match e with
           | Col (None, x) -> (
             match Valuation.find_opt x acc with
             | Some bound ->
               if Value.equal bound value then acc else raise Mismatch
             | None -> Valuation.add x value acc)
           | _ -> (
             (* constant-ish expression: evaluate and compare *)
             match
               Ent_sql.Eval.eval_expr ~var:(lookup_of acc) access env [] e
             with
             | v when Value.equal v value -> acc
             | _ -> raise Mismatch
             | exception Ent_sql.Eval.Eval_error _ -> raise Mismatch))
         valuation exprs row)
  with Mismatch -> None

type valuation = Value.t Valuation.t

(* Stage 1 — the expensive, database-reading half: enumerate the
   valuations satisfying [body] under [env]. This is a pure function of
   (body, referenced host bindings, database state), which is what
   makes it cacheable (Gcache); the per-query head/post substitution
   happens in stage 2. *)
let valuations ?(limit = 10_000) ~access ~env (body : Ent_sql.Ast.cond) =
  let binders, filters =
    List.partition
      (fun (c : Ent_sql.Ast.cond) ->
        match c with
        | In_select _ -> true
        | _ -> false)
      (conjuncts body)
  in
  (* Enumerate valuations binder by binder (left to right, correlated
     subqueries see earlier bindings). *)
  let explored = ref 0 in
  let step valuations (c : Ent_sql.Ast.cond) =
    match c with
    | In_select (exprs, sub) ->
      List.concat_map
        (fun valuation ->
          let rows =
            Ent_sql.Eval.(
              select_rows_correlated ~var:(lookup_of valuation) access env sub)
          in
          List.filter_map
            (fun row ->
              incr explored;
              if !explored > limit then
                fail "grounding exceeded %d valuations" limit;
              unify_row ~access ~env valuation exprs (Array.to_list row))
            rows)
        valuations
    | _ -> assert false
  in
  let valuations = List.fold_left step [ Valuation.empty ] binders in
  (* Apply the remaining conjuncts as filters. *)
  let keep valuation =
    List.for_all
      (fun c ->
        try Ent_sql.Eval.eval_cond ~var:(lookup_of valuation) access env [] c
        with Ent_sql.Eval.Eval_error msg ->
          fail "body filter not evaluable: %s" msg)
      filters
  in
  let valuations = List.filter keep valuations in
  Obs.incr m_computes;
  Obs.incr ~n:!explored m_valuations;
  valuations

(* Stage 2 — cheap and database-free: substitute each valuation into
   the query's head and post atoms and de-duplicate. *)
let groundings_of (query : Ir.t) valuations =
  let to_grounding valuation =
    let subst atom =
      Ir.substitute
        (fun x ->
          match Valuation.find_opt x valuation with
          | Some v -> v
          | None -> fail "unbound variable %s (unsafe query)" x)
        atom
    in
    { g_head = List.map subst query.head; g_post = List.map subst query.post }
  in
  let groundings = List.map to_grounding valuations in
  (* De-duplicate while keeping first-seen order. *)
  let seen = Hashtbl.create 16 in
  let groundings =
    List.filter
      (fun g ->
        let key = (g.g_head, g.g_post) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      groundings
  in
  Obs.observe m_size (float_of_int (List.length groundings));
  groundings

let compute ?limit ~access ~env (query : Ir.t) =
  groundings_of query (valuations ?limit ~access ~env query.body)

let pp_ground_atom ppf ((rel, values) : Ir.ground_atom) =
  Format.fprintf ppf "%s(%a)" rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    values

let pp_grounding ppf g =
  let pp_atoms =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp_ground_atom
  in
  Format.fprintf ppf "{%a} %a" pp_atoms g.g_post pp_atoms g.g_head
