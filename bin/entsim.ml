(* entsim — deterministic fault-injection simulation for entangled
   transactions.

     entsim --seeds 1000                    # 1000 seeded fault schedules
     entsim --seed 42 --plan 'txn.wal.append@3=crash'  # replay one schedule
     entsim --seed 7 --break-group-commit --seeds 20   # widow-detector check

   Each seed deterministically derives a workload and a fault plan
   (crashes at WAL append boundaries, torn records, flush failures,
   mid-group-commit crashes, lost pool snapshots, partner dropouts,
   injected timeouts), runs the system through crash and recovery, and
   checks the recovery invariants. Every failure prints a one-line
   repro command with a greedily shrunken plan.

   Exit codes: 0 all invariants held, 1 violations found, 2 bad input. *)

open Cmdliner
module Harness = Ent_entsim.Harness
module Plan = Ent_fault.Plan

let print_outcome cfg (o : Harness.outcome) =
  Printf.printf "seed %d: plan %s — %d crash(es), %d flush failure(s), %d commit(s)\n"
    cfg.Harness.seed (Plan.to_string o.plan) o.crashes o.flush_failures o.commits;
  List.iter
    (fun (v : Harness.violation) ->
      Printf.printf "  VIOLATION [%s] %s\n" v.invariant v.detail)
    o.violations

let report_failure ~out cfg (o : Harness.outcome) =
  let shrunk = Harness.shrink cfg o.plan in
  let repro = Harness.repro cfg shrunk in
  Printf.printf "FAIL seed %d: %d violation(s), shrunken plan %s\n"
    cfg.Harness.seed
    (List.length o.violations)
    (Plan.to_string shrunk);
  List.iter
    (fun (v : Harness.violation) ->
      Printf.printf "  [%s] %s\n" v.invariant v.detail)
    o.violations;
  Printf.printf "  repro: %s\n%!" repro;
  match out with
  | None -> ()
  | Some oc ->
    List.iter
      (fun (v : Harness.violation) ->
        Printf.fprintf oc "# [%s] %s\n" v.invariant v.detail)
      o.violations;
    Printf.fprintf oc "%s\n%!" repro

let main seeds seed plan_str pairs rollback_pairs plain lonely users cities
    max_arms break_group_commit combined out_path verbose =
  let cfg =
    {
      Harness.seed;
      pairs;
      rollback_pairs;
      plain;
      lonely;
      users;
      cities;
      max_arms;
      break_group_commit;
      combined;
    }
  in
  match plan_str with
  | Some s -> (
    match Plan.of_string s with
    | Error msg ->
      prerr_endline ("entsim: bad --plan: " ^ msg);
      2
    | Ok plan ->
      let o = Harness.run cfg plan in
      print_outcome cfg o;
      if o.violations = [] then 0 else 1)
  | None ->
    let out = Option.map open_out out_path in
    let failures = ref 0 in
    let crashes = ref 0 in
    for i = 0 to seeds - 1 do
      let cfg = { cfg with Harness.seed = seed + i } in
      let o = Harness.check_seed cfg in
      crashes := !crashes + o.crashes;
      if verbose then print_outcome cfg o;
      if o.violations <> [] then begin
        incr failures;
        report_failure ~out cfg o
      end;
      if (i + 1) mod 200 = 0 then
        Printf.eprintf "entsim: %d/%d schedules, %d failure(s)\n%!" (i + 1)
          seeds !failures
    done;
    Option.iter close_out out;
    Printf.printf
      "entsim: %d seeded fault schedule(s), %d crash(es) injected, %d \
       failure(s)\n"
      seeds !crashes !failures;
    if !failures = 0 then 0 else 1

let seeds =
  Arg.(
    value & opt int 100
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault schedules to run.")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"S"
        ~doc:"Base seed: schedules use seeds S, S+1, … (with --plan: the seed).")

let plan =
  Arg.(
    value & opt (some string) None
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Replay exactly this fault plan (site@hit=action,…) under --seed \
           instead of generating plans.")

let pairs =
  Arg.(
    value & opt int Harness.default.pairs
    & info [ "pairs" ] ~docv:"N" ~doc:"Well-behaved entangled pairs per schedule.")

let rollback_pairs =
  Arg.(
    value & opt int Harness.default.rollback_pairs
    & info [ "rollback-pairs" ] ~docv:"N"
        ~doc:"Entangled pairs whose second member rolls back after entangling.")

let plain =
  Arg.(
    value & opt int Harness.default.plain
    & info [ "plain" ] ~docv:"N" ~doc:"Classical (non-entangled) transactions.")

let lonely =
  Arg.(
    value & opt int Harness.default.lonely
    & info [ "lonely" ] ~docv:"N"
        ~doc:"Partner-less entangled programs (they stay in the dormant pool).")

let users =
  Arg.(
    value & opt int Harness.default.users
    & info [ "users" ] ~docv:"N" ~doc:"Social-graph users in the travel world.")

let cities =
  Arg.(
    value & opt int Harness.default.cities
    & info [ "cities" ] ~docv:"N" ~doc:"Cities in the travel world.")

let max_arms =
  Arg.(
    value & opt int Harness.default.max_arms
    & info [ "max-arms" ] ~docv:"N" ~doc:"Maximum arms per generated fault plan.")

let break_group_commit =
  Arg.(
    value & flag
    & info [ "break-group-commit" ]
        ~doc:
          "Commit entanglement-group members independently (deliberately \
           broken; the harness must report widow violations).")

let combined =
  Arg.(
    value & flag
    & info [ "combined" ]
        ~doc:"Use combined-query evaluation instead of coordination search.")

let out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Append failing repro commands (with their violations) to FILE.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule's outcome.")

let cmd =
  let doc = "deterministic fault-injection simulation for entangled transactions" in
  Cmd.v
    (Cmd.info "entsim" ~version:"1.0.0" ~doc)
    Term.(
      const main $ seeds $ seed $ plan $ pairs $ rollback_pairs $ plain $ lonely
      $ users $ cities $ max_arms $ break_group_commit $ combined $ out
      $ verbose)

let () = exit (Cmd.eval' cmd)
