(* entsim — deterministic fault-injection simulation for entangled
   transactions.

     entsim --seeds 1000                    # 1000 seeded fault schedules
     entsim --seed 42 --plan 'txn.wal.append@3=crash'  # replay one schedule
     entsim --seed 7 --break-group-commit --seeds 20   # widow-detector check

   Each seed deterministically derives a workload and a fault plan
   (crashes at WAL append boundaries, torn records, flush failures,
   mid-group-commit crashes, lost pool snapshots, partner dropouts,
   injected timeouts), runs the system through crash and recovery, and
   checks the recovery invariants. Every failure prints a one-line
   repro command with a greedily shrunken plan.

   Exit codes: 0 all invariants held, 1 violations found, 2 bad input. *)

open Cmdliner
module Harness = Ent_entsim.Harness
module Plan = Ent_fault.Plan
module Event = Ent_obs.Event
module Trace = Ent_obs.Trace

(* Each violation carries the last events involving the implicated
   txns/tasks; print them as an indented causal timeline. *)
let print_violation tag (v : Harness.violation) =
  Printf.printf "  %s[%s] %s\n" tag v.invariant v.detail;
  List.iter (fun line -> Printf.printf "    | %s\n" line) v.timeline

let print_wait_graph = function
  | None -> ()
  | Some graph ->
    String.split_on_char '\n' graph
    |> List.iter (fun line -> if line <> "" then Printf.printf "  %s\n" line)

let print_outcome cfg (o : Harness.outcome) =
  Printf.printf "seed %d: plan %s — %d crash(es), %d flush failure(s), %d commit(s)\n"
    cfg.Harness.seed (Plan.to_string o.plan) o.crashes o.flush_failures o.commits;
  List.iter (print_violation "VIOLATION ") o.violations;
  if o.violations <> [] then print_wait_graph o.wait_graph

let report_failure ~out cfg (o : Harness.outcome) =
  let shrunk = Harness.shrink cfg o.plan in
  let repro = Harness.repro cfg shrunk in
  Printf.printf "FAIL seed %d: %d violation(s), shrunken plan %s\n"
    cfg.Harness.seed
    (List.length o.violations)
    (Plan.to_string shrunk);
  List.iter (print_violation "") o.violations;
  print_wait_graph o.wait_graph;
  Printf.printf "  repro: %s\n%!" repro;
  match out with
  | None -> shrunk
  | Some oc ->
    List.iter
      (fun (v : Harness.violation) ->
        (match String.split_on_char '\n' v.detail with
        | [] -> Printf.fprintf oc "# [%s]\n" v.invariant
        | first :: rest ->
          Printf.fprintf oc "# [%s] %s\n" v.invariant first;
          List.iter (fun line -> Printf.fprintf oc "#   %s\n" line) rest);
        List.iter (fun line -> Printf.fprintf oc "#   | %s\n" line) v.timeline)
      o.violations;
    Option.iter
      (fun graph ->
        String.split_on_char '\n' graph
        |> List.iter (fun line ->
               if line <> "" then Printf.fprintf oc "# %s\n" line))
      o.wait_graph;
    Printf.fprintf oc "%s\n%!" repro;
    shrunk

let write_flight path (o : Harness.outcome) =
  match o.flight with
  | None -> ()
  | Some doc ->
    Ent_obs.Flight.write path doc;
    Printf.printf "entsim: wrote flight-recorder dump to %s\n" path

let main seeds seed plan_str pairs rollback_pairs plain lonely users cities
    max_arms break_group_commit combined certify isolation timeline out_path
    trace_out flight_out verbose =
  if not (List.mem isolation [ "2pl"; "si"; "snapshot"; "mixed" ]) then begin
    prerr_endline
      ("entsim: bad --isolation " ^ isolation ^ " (2pl|si|mixed)");
    exit 2
  end;
  let isolation = if isolation = "snapshot" then "si" else isolation in
  (* The harness leaves the last executed schedule's events in the ring;
     [--trace-out] exports them as a Perfetto/chrome://tracing trace. *)
  let write_trace () =
    Option.iter
      (fun path ->
        Trace.write path (Event.events ());
        Printf.printf "entsim: wrote trace of the last executed schedule to %s\n"
          path)
      trace_out
  in
  let cfg =
    {
      Harness.seed;
      pairs;
      rollback_pairs;
      plain;
      lonely;
      users;
      cities;
      max_arms;
      break_group_commit;
      combined;
      certify;
      isolation;
      timeline;
    }
  in
  match plan_str with
  | Some s -> (
    match Plan.of_string s with
    | Error msg ->
      prerr_endline ("entsim: bad --plan: " ^ msg);
      2
    | Ok plan ->
      let o = Harness.run cfg plan in
      print_outcome cfg o;
      write_trace ();
      Option.iter (fun path -> write_flight path o) flight_out;
      if o.violations = [] then 0 else 1)
  | None ->
    let out = Option.map open_out out_path in
    let failures = ref 0 in
    let crashes = ref 0 in
    let traced = ref false in
    let flighted = ref false in
    for i = 0 to seeds - 1 do
      let cfg = { cfg with Harness.seed = seed + i } in
      let o = Harness.check_seed cfg in
      crashes := !crashes + o.crashes;
      if verbose then print_outcome cfg o;
      if o.violations <> [] then begin
        incr failures;
        (* Flight-record the first failure as observed (pre-shrink: the
           dump should show the run that actually tripped). *)
        if not !flighted then begin
          Option.iter (fun path -> write_flight path o) flight_out;
          flighted := true
        end;
        let shrunk = report_failure ~out cfg o in
        (* Trace the first failure: re-run its shrunken plan so the ring
           holds exactly the failing schedule, then export. *)
        if trace_out <> None && not !traced then begin
          ignore (Harness.run cfg shrunk);
          write_trace ();
          traced := true
        end
      end;
      if (i + 1) mod 200 = 0 then
        Printf.eprintf "entsim: %d/%d schedules, %d failure(s)\n%!" (i + 1)
          seeds !failures
    done;
    if not !traced then write_trace ();
    Option.iter close_out out;
    Printf.printf
      "entsim: %d seeded fault schedule(s), %d crash(es) injected, %d \
       failure(s)\n"
      seeds !crashes !failures;
    if !failures = 0 then 0 else 1

let seeds =
  Arg.(
    value & opt int 100
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault schedules to run.")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"S"
        ~doc:"Base seed: schedules use seeds S, S+1, … (with --plan: the seed).")

let plan =
  Arg.(
    value & opt (some string) None
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Replay exactly this fault plan (site@hit=action,…) under --seed \
           instead of generating plans.")

let pairs =
  Arg.(
    value & opt int Harness.default.pairs
    & info [ "pairs" ] ~docv:"N" ~doc:"Well-behaved entangled pairs per schedule.")

let rollback_pairs =
  Arg.(
    value & opt int Harness.default.rollback_pairs
    & info [ "rollback-pairs" ] ~docv:"N"
        ~doc:"Entangled pairs whose second member rolls back after entangling.")

let plain =
  Arg.(
    value & opt int Harness.default.plain
    & info [ "plain" ] ~docv:"N" ~doc:"Classical (non-entangled) transactions.")

let lonely =
  Arg.(
    value & opt int Harness.default.lonely
    & info [ "lonely" ] ~docv:"N"
        ~doc:"Partner-less entangled programs (they stay in the dormant pool).")

let users =
  Arg.(
    value & opt int Harness.default.users
    & info [ "users" ] ~docv:"N" ~doc:"Social-graph users in the travel world.")

let cities =
  Arg.(
    value & opt int Harness.default.cities
    & info [ "cities" ] ~docv:"N" ~doc:"Cities in the travel world.")

let max_arms =
  Arg.(
    value & opt int Harness.default.max_arms
    & info [ "max-arms" ] ~docv:"N" ~doc:"Maximum arms per generated fault plan.")

let break_group_commit =
  Arg.(
    value & flag
    & info [ "break-group-commit" ]
        ~doc:
          "Commit entanglement-group members independently (deliberately \
           broken; the harness must report widow violations).")

let combined =
  Arg.(
    value & flag
    & info [ "combined" ]
        ~doc:"Use combined-query evaluation instead of coordination search.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Run an online schedule certifier per epoch; a certification \
           violation is reported (and shrunken) like any other invariant \
           violation.")

let isolation =
  Arg.(
    value & opt string Harness.default.isolation
    & info [ "isolation" ] ~docv:"LEVEL"
        ~doc:
          "Per-transaction isolation of the workload: 2pl (all Strict 2PL), \
           si (all snapshot isolation), or mixed (alternating). Snapshot \
           transactions read begin-stamp versions and take no read locks; \
           the harness additionally checks that version chains are empty \
           after recovery and at quiescence.")

let timeline =
  Arg.(
    value & opt int Harness.default.timeline
    & info [ "timeline" ] ~docv:"N"
        ~doc:
          "Events attached per violation timeline (the last N ring events \
           involving the implicated transactions).")

let out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Append failing repro commands (with their violations) to FILE.")

let flight_out =
  Arg.(
    value & opt (some string) None
    & info [ "flight-out" ] ~docv:"FILE"
        ~doc:
          "Write a flight-recorder dump (metrics, time-series windows, event \
           ring, wait graph) of the first failing schedule to FILE as JSON. \
           Nothing is written when every schedule passes.")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Perfetto / chrome://tracing trace of the last executed \
           schedule to FILE (with seeded schedules: the first failure's \
           shrunken plan, or the last seed when everything passed).")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule's outcome.")

let cmd =
  let doc = "deterministic fault-injection simulation for entangled transactions" in
  Cmd.v
    (Cmd.info "entsim" ~version:"1.0.0" ~doc)
    Term.(
      const main $ seeds $ seed $ plan $ pairs $ rollback_pairs $ plain $ lonely
      $ users $ cities $ max_arms $ break_group_commit $ combined $ certify
      $ isolation $ timeline $ out $ trace_out $ flight_out $ verbose)

let () = exit (Cmd.eval' cmd)
