(* entlint — static analysis for entangled-transaction programs and a
   checker for recorded schedule histories.

     entlint lint program.sql other.sql      # static lint passes
     entlint lint --workload entangled-t     # lint generated workload programs
     entlint matrix                          # conflict matrix + lock-order graph
     entlint check history.txt               # Appendix C requirements on a schedule
     entlint record script.sql               # run a script, check the recorded schedule

   Exit codes: 0 clean, 1 findings/anomalies, 2 bad input. *)

open Ent_analysis

let read_input = function
  | Some path -> Driver.read_file path
  | None -> Ok (In_channel.input_all stdin)

let fail_input msg =
  prerr_endline msg;
  2

(* --- lint --- *)

let format_of = function
  | "text" -> Ok `Text
  | "json" -> Ok `Json
  | s -> Error (Printf.sprintf "unknown output format %S (text|json)" s)

let gather_inputs files workloads n ~require =
  let file_inputs =
    List.fold_left
      (fun acc path ->
        match acc with
        | Error _ -> acc
        | Ok acc -> (
          match Driver.inputs_of_file path with
          | Ok inputs -> Ok (acc @ inputs)
          | Error msg -> Error msg))
      (Ok []) files
  in
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ -> acc
      | Ok acc -> (
        match Driver.workload_inputs ~n name with
        | Ok inputs -> Ok (acc @ inputs)
        | Error msg -> Error msg))
    file_inputs workloads
  |> Result.map (fun inputs ->
         if inputs = [] && files = [] && workloads = [] then Error require
         else Ok inputs)
  |> Result.join

let lint_main files workload n strict format =
  match
    Result.bind (format_of format) (fun format ->
        Result.map
          (fun inputs -> (format, inputs))
          (gather_inputs files (Option.to_list workload) n
             ~require:"nothing to lint: give program files or --workload NAME"))
  with
  | Error msg -> fail_input msg
  | Ok (format, inputs) ->
    let findings = Driver.dedupe (Lint.run inputs) in
    (match format with
    | `Text -> Format.printf "%a%!" Driver.render_findings findings
    | `Json ->
      print_endline (Ent_obs.Json.to_string (Driver.findings_json findings)));
    Driver.exit_code ~strict findings

(* --- matrix --- *)

let matrix_main files workloads n format dot_out =
  let workloads =
    if workloads = [] && files = [] then Driver.workload_names else workloads
  in
  match
    Result.bind (format_of format) (fun format ->
        Result.map
          (fun inputs -> (format, inputs))
          (gather_inputs files workloads n ~require:"nothing to analyse"))
  with
  | Error msg -> fail_input msg
  | Ok (format, inputs) ->
    let m = Matrix.analyze inputs in
    (match dot_out with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Matrix.lock_graph_dot m))
    | None -> ());
    (match format with
    | `Text ->
      Format.printf "%a@." Matrix.pp m;
      let findings = Driver.dedupe (Matrix.deadlock_findings m) in
      if findings <> [] then Format.printf "@\n%a%!" Driver.render_findings findings
    | `Json -> print_endline (Ent_obs.Json.to_string (Matrix.to_json m)));
    0

(* --- check --- *)

let serializability_of = function
  | "auto" -> Ok `Auto
  | "on" -> Ok `On
  | "off" -> Ok `Off
  | s -> Error (Printf.sprintf "unknown serializability mode %S (auto|on|off)" s)

(* --si takes "all" or a comma-separated transaction-id list; the
   history notation itself carries no isolation levels. *)
let si_levels_of history = function
  | None -> Ok None
  | Some "all" ->
    Ok
      (Some
         (List.map
            (fun txn -> (txn, Ent_txn.Engine.Snapshot))
            (Ent_schedule.History.txns history)))
  | Some spec -> (
    match
      List.map
        (fun part ->
          match int_of_string_opt (String.trim part) with
          | Some txn -> (txn, Ent_txn.Engine.Snapshot)
          | None -> raise Exit)
        (String.split_on_char ',' spec)
    with
    | levels -> Ok (Some levels)
    | exception Exit ->
      Error
        (Printf.sprintf
           "bad --si %S: expected \"all\" or comma-separated transaction ids"
           spec))

let check_main path serializability si_txns =
  match serializability_of serializability with
  | Error msg -> fail_input msg
  | Ok serializability -> (
    match Result.bind (read_input path) Driver.history_of_text with
    | Error msg -> fail_input msg
    | Ok history -> (
      match si_levels_of history si_txns with
      | Error msg -> fail_input msg
      | Ok None ->
        let report = Histcheck.check ~serializability history in
        Format.printf "%a@.%!" Histcheck.pp report;
        if Histcheck.ok report then 0 else 1
      | Ok (Some levels) ->
        (* Mixed-level history: the strict-serializability oracle no
           longer applies to the SI members, so judge the schedule with
           the level-aware certifier instead. *)
        let violations = Ent_schedule.Certify.check_history ~levels history in
        let si =
          String.concat ","
            (List.map (fun (txn, _) -> string_of_int txn) levels)
        in
        if violations = [] then begin
          Format.printf "certify: ok under mixed levels (si: %s)@.%!" si;
          0
        end
        else begin
          Format.printf "certify: %d violation%s under mixed levels (si: %s)@\n"
            (List.length violations)
            (if List.length violations = 1 then "" else "s")
            si;
          List.iter
            (fun v ->
              Format.printf "  %a@\n" Ent_schedule.Certify.pp_violation v)
            violations;
          Format.printf "%!";
          1
        end))

(* --- record --- *)

let record_main path isolation frequency serializability print_history =
  match serializability_of serializability with
  | Error msg -> fail_input msg
  | Ok serializability -> (
    (* si / mixed select per-transaction levels over the full lock
       protocol; the rest are the scheduler's 2PL weakening presets. *)
    let isolation, txn_isolation =
      match isolation with
      | "si" | "snapshot" -> ("full", "si")
      | "mixed" -> ("full", "mixed")
      | other -> (other, "2pl")
    in
    let certifier =
      if txn_isolation = "2pl" then None
      else Some (Ent_schedule.Certify.create ())
    in
    match
      Result.bind (read_input path)
        (Driver.record_script ~isolation ~txn_isolation ~frequency ?certifier)
    with
    | Error msg -> fail_input msg
    | Ok history -> (
      if print_history then
        Format.printf "%a@." Ent_schedule.History.pp history;
      match certifier with
      | None ->
        let report = Histcheck.check ~serializability history in
        Format.printf "%a@.%!" Histcheck.pp report;
        if Histcheck.ok report then 0 else 1
      | Some c ->
        (* Mixed-level run: Appendix C's strict-serializability oracle
           does not apply to the SI members — report the level-aware
           online certifier instead. *)
        Format.printf "%a@.%!" Ent_schedule.Certify.pp_report c;
        if Ent_schedule.Certify.ok c then 0 else 1))

(* --- command line --- *)

open Cmdliner

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Program script files to lint.")

let workload =
  Arg.(value & opt (some string) None & info [ "workload"; "w" ] ~docv:"NAME"
         ~doc:(Printf.sprintf "Lint the generated programs of a workload: %s."
                 (String.concat ", " Driver.workload_names)))

let size =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N"
         ~doc:"Batch or structure size for --workload.")

let strict =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Exit nonzero on warnings too, not only errors.")

let format =
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FORMAT"
         ~doc:"Output format: text or json (stable fields mirroring the \
               finding record).")

let workloads =
  Arg.(value & opt_all string [] & info [ "workload"; "w" ] ~docv:"NAME"
         ~doc:(Printf.sprintf
                 "Analyse the generated programs of a workload (repeatable; \
                  default: all): %s."
                 (String.concat ", " Driver.workload_names)))

let dot_out =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
         ~doc:"Also write the lock-order graph as Graphviz DOT to $(docv).")

let history_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"HISTORY"
         ~doc:"Schedule history file (stdin when omitted), in the notation \
               of Appendix C: R1(x) RG1(Flights) W1(Reserve[5]) E1{1,2} C1 A2.")

let script_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT"
         ~doc:"SQL script to execute (stdin when omitted).")

let serializability =
  Arg.(value & opt string "auto" & info [ "serializability" ] ~docv:"MODE"
         ~doc:"Check oracle-serializability: auto (only when exact), on, off.")

let isolation =
  Arg.(value & opt string "full" & info [ "isolation" ]
         ~doc:"Isolation level for record: full, no-group-commit, \
               no-grounding-locks, read-uncommitted (2PL presets); si \
               (snapshot isolation for every transaction) or mixed \
               (alternate 2PL and si), judged by the level-aware \
               certifier instead of the Appendix C checker.")

let si_txns =
  Arg.(value & opt (some string) None & info [ "si" ] ~docv:"TXNS"
         ~doc:"Treat these transactions of the history as snapshot-isolation \
               ($(docv) is \"all\" or comma-separated ids) and check with \
               the level-aware certifier instead of the Appendix C checker.")

let frequency =
  Arg.(value & opt int 1 & info [ "frequency"; "f" ]
         ~doc:"Run frequency for record: start a run after this many arrivals.")

let print_history =
  Arg.(value & flag & info [ "print-history" ]
         ~doc:"Print the recorded schedule before the report.")

let lint_cmd =
  let doc = "statically analyse entangled-transaction programs" in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint_main $ files $ workload $ size $ strict $ format)

let matrix_cmd =
  let doc =
    "conflict/commutativity matrix and lock-order graph over a program suite"
  in
  Cmd.v (Cmd.info "matrix" ~doc)
    Term.(const matrix_main $ files $ workloads $ size $ format $ dot_out)

let check_cmd =
  let doc = "check a schedule history against the Appendix C requirements" in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const check_main $ history_file $ serializability $ si_txns)

let record_cmd =
  let doc = "execute a script, record its schedule, and check it" in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const record_main $ script_file $ isolation $ frequency
          $ serializability $ print_history)

let main =
  let doc = "static analyzer and schedule checker for entangled transactions" in
  Cmd.group (Cmd.info "entlint" ~version:"1.0.0" ~doc)
    [ lint_cmd; matrix_cmd; check_cmd; record_cmd ]

let () = exit (Cmd.eval' main)
