(* youtopia — run scripts of classical and entangled transactions.

   A script is a sequence of top-level statements (DDL and bootstrap
   DML, executed immediately) and BEGIN TRANSACTION ... COMMIT blocks
   (submitted to the entangled transaction scheduler). After the pool
   drains, outcomes, statistics and requested tables are printed.

     dune exec bin/youtopia.exe -- run script.sql --show Bookings
*)

open Ent_core

(* The isolation flag selects either a 2PL weakening preset (the
   scheduler's lock-protocol knobs) or a per-transaction level: [si]
   runs every submitted transaction under snapshot isolation, [mixed]
   alternates 2PL and SI per submission order. *)
type levels =
  | All_2pl
  | All_si
  | Mixed

let isolation_of_string = function
  | "full" -> Ok (Isolation.full, All_2pl)
  | "no-group-commit" -> Ok (Isolation.no_group_commit, All_2pl)
  | "no-grounding-locks" -> Ok (Isolation.no_grounding_locks, All_2pl)
  | "read-uncommitted" -> Ok (Isolation.read_uncommitted, All_2pl)
  | "si" | "snapshot" -> Ok (Isolation.full, All_si)
  | "mixed" -> Ok (Isolation.full, Mixed)
  | s -> Error (`Msg (Printf.sprintf "unknown isolation level %S" s))

let level_of_count levels count =
  match levels with
  | All_2pl -> Ent_txn.Engine.Serializable_2pl
  | All_si -> Ent_txn.Engine.Snapshot
  | Mixed ->
    if count land 1 = 1 then Ent_txn.Engine.Snapshot
    else Ent_txn.Engine.Serializable_2pl

let write_metrics = function
  | None -> ()
  | Some path ->
    Ent_obs.Obs.write_snapshot path;
    Printf.eprintf "wrote metrics snapshot to %s\n%!" path

let run_script path connections frequency parallel isolation_name show_tables
    verbose metrics trace trace_out wait_graph wait_graph_dot certify slo_path
    flight_out =
  match isolation_of_string isolation_name with
  | Error (`Msg msg) ->
    prerr_endline msg;
    2
  | Ok (isolation, levels) -> (
    (* Parse the SLO spec before doing any work: a bad file is exit 2,
       like a bad script. *)
    let slo_specs =
      match slo_path with
      | None -> Ok None
      | Some p -> (
        match Ent_obs.Slo.load p with
        | Ok specs -> Ok (Some specs)
        | Error msg -> Error msg)
    in
    match slo_specs with
    | Error msg ->
      Printf.eprintf "bad --slo file: %s\n" msg;
      2
    | Ok slo_specs -> (
    let input =
      match path with
      | Some p ->
        let ic = open_in p in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      | None -> In_channel.input_all stdin
    in
    match Ent_sql.Parser.parse_script input with
    | exception Ent_sql.Parser.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      2
    | exception Ent_sql.Lexer.Lex_error msg ->
      Printf.eprintf "lex error: %s\n" msg;
      2
    | items ->
      if trace then Ent_obs.Obs.set_tracing true;
      if trace_out <> None then begin
        Ent_obs.Event.set_logging true;
        Ent_obs.Event.reset ()
      end;
      (* Windowed sampling must be on before the system is built: lock
         shards and domain pools register their sampling-only gauges at
         creation time (keeping default runs' snapshots byte-identical). *)
      if slo_specs <> None || flight_out <> None then
        Ent_obs.Timeseries.enable ();
      let monitor =
        Option.map
          (fun specs ->
            let t = Ent_obs.Slo.create specs in
            Ent_obs.Slo.attach t;
            t)
          slo_specs
      in
      let runner =
        if parallel > 1 then Some (Ent_par.Pool.create ~domains:parallel)
        else None
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Ent_par.Pool.shutdown runner)
      @@ fun () ->
      let config =
        {
          Scheduler.default_config with
          connections;
          trigger = Scheduler.Every_arrivals frequency;
          isolation;
          runner;
        }
      in
      let m = Manager.create ~config () in
      let certifier =
        if not certify then None
        else begin
          let c = Ent_schedule.Certify.create () in
          Manager.observe m
            ~on_event:(Ent_schedule.Certify.on_engine_event c)
            ~on_entangle:(Ent_schedule.Certify.on_entangle c);
          Some c
        end
      in
      let access = Ent_sql.Eval.direct_access (Manager.catalog m) in
      let env = Ent_sql.Eval.fresh_env () in
      let submitted = ref [] in
      let count = ref 0 in
      List.iter
        (fun item ->
          match item with
          | Ent_sql.Parser.Stmt (stmt, _) ->
            ignore (Ent_sql.Eval.exec_stmt access env stmt)
          | Ent_sql.Parser.Program ast ->
            incr count;
            let label = Printf.sprintf "txn-%d" !count in
            let level = level_of_count levels !count in
            let id = Manager.submit m (Program.make ~isolation:level ~label ast) in
            submitted := (id, label) :: !submitted)
        items;
      Manager.drain m;
      let pending = Scheduler.dormant (Manager.scheduler m) in
      List.iter
        (fun (id, label) ->
          let outcome =
            match Manager.outcome m id with
            | Some Scheduler.Committed -> "committed"
            | Some Scheduler.Timed_out -> "timed out"
            | Some Scheduler.Rolled_back -> "rolled back"
            | Some (Scheduler.Errored e) -> "error: " ^ e
            | None ->
              if List.mem id pending then "waiting for a partner" else "pending"
          in
          Printf.printf "%-8s %s\n" label outcome;
          if verbose then
            List.iter
              (fun (rel, values) ->
                Printf.printf "         answer %s(%s)\n" rel
                  (String.concat ", "
                     (List.map Ent_storage.Value.to_string values)))
              (Manager.answers_of m id))
        (List.rev !submitted);
      let s = Manager.stats m in
      Printf.printf
        "-- runs: %d, commits: %d, entanglements: %d, repooled: %d, \
         timeouts: %d, simulated time: %.3f ms\n"
        s.runs s.commits s.entangle_events s.repooled s.timeouts
        (1000.0 *. Manager.now m);
      if levels <> All_2pl then
        Printf.printf "-- si aborts (first-committer-wins): %d\n" s.si_aborts;
      List.iter
        (fun table ->
          Printf.printf "-- table %s:\n" table;
          match Ent_storage.Catalog.find (Manager.catalog m) table with
          | None -> Printf.printf "   (unknown table)\n"
          | Some t ->
            Ent_storage.Table.iter
              (fun _ row ->
                Printf.printf "   (%s)\n"
                  (String.concat ", "
                     (List.map Ent_storage.Value.to_string
                        (Ent_storage.Tuple.to_list row))))
              t)
        show_tables;
      (* The wait graph at quiescence names the stuck tasks: dormant
         entangled programs still awaiting partners, or lock waiters. *)
      if wait_graph || wait_graph_dot <> None then begin
        let g = Scheduler.wait_graph (Manager.scheduler m) in
        if wait_graph then print_string (Waitgraph.render_text g);
        Option.iter
          (fun dot_path ->
            Out_channel.with_open_text dot_path (fun oc ->
                output_string oc (Waitgraph.render_dot g));
            Printf.eprintf "wrote wait graph (DOT) to %s\n%!" dot_path)
          wait_graph_dot
      end;
      Option.iter
        (fun out ->
          Ent_obs.Trace.write out (Ent_obs.Event.events ());
          Printf.eprintf "wrote Perfetto trace to %s\n%!" out)
        trace_out;
      write_metrics metrics;
      let certify_failed =
        match certifier with
        | None -> false
        | Some c ->
          Printf.printf "-- %s\n"
            (Format.asprintf "%a" Ent_schedule.Certify.pp_report c);
          not (Ent_schedule.Certify.ok c)
      in
      (* Close the partial window so even sub-window scripts evaluate
         their SLOs at least once, then print the structured verdict. *)
      let slo_failed =
        match monitor with
        | None -> false
        | Some mon ->
          Ent_obs.Timeseries.flush ();
          Ent_obs.Slo.detach ();
          Printf.printf "-- slo: %s\n"
            (Ent_obs.Json.to_string (Ent_obs.Slo.report_json mon));
          not (Ent_obs.Slo.ok mon)
      in
      (* Flight recorder: dumped on SLO breach, or unconditionally when
         no SLO file was given (on-demand capture). *)
      (match flight_out with
      | None -> ()
      | Some out ->
        if Option.is_none monitor then Ent_obs.Timeseries.flush ();
        if slo_failed || Option.is_none monitor then begin
          let doc =
            Ent_obs.Flight.to_json
              ~reason:(if slo_failed then "slo-breach" else "on-demand")
              ?slo:(Option.map Ent_obs.Slo.report_json monitor)
              ~sim_now:(Manager.now m) ()
          in
          Ent_obs.Flight.write out doc;
          Printf.eprintf "wrote flight-recorder dump to %s\n%!" out
        end);
      if certify_failed || slo_failed then 1 else 0))

(* --- interactive mode ---

   Lines of the form "name> statement" drive per-user sessions against
   one Interactive hub; "name> poll", "name> commit" and "name> cancel"
   are session commands. Lines without a "name>" prefix are bootstrap
   DDL/DML executed directly. "#" starts a comment. *)

let repl path isolation_name =
  match isolation_of_string isolation_name with
  | Error (`Msg msg) ->
    prerr_endline msg;
    2
  | Ok (_, (All_si | Mixed)) ->
    prerr_endline
      "snapshot isolation applies to the run command; repl sessions are \
       Strict 2PL";
    2
  | Ok (isolation, All_2pl) ->
    let input =
      match path with
      | Some p ->
        let ic = open_in p in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      | None -> In_channel.input_all stdin
    in
    let catalog = Ent_storage.Catalog.create () in
    let engine = Ent_txn.Engine.create ~wal:true catalog in
    let hub = Interactive.create_hub ~isolation engine in
    let sessions : (string, Interactive.session) Hashtbl.t = Hashtbl.create 8 in
    let session_of name =
      match Hashtbl.find_opt sessions name with
      | Some s -> s
      | None ->
        let s = Interactive.start hub in
        Hashtbl.replace sessions name s;
        s
    in
    let access = Ent_sql.Eval.direct_access catalog in
    let boot_env = Ent_sql.Eval.fresh_env () in
    let describe = function
      | Interactive.Rows rows ->
        Printf.sprintf "%d row(s)%s" (List.length rows)
          (String.concat ""
             (List.map
                (fun row ->
                  "\n    ("
                  ^ String.concat ", "
                      (List.map Ent_storage.Value.to_string (Array.to_list row))
                  ^ ")")
                rows))
      | Interactive.Affected n -> Printf.sprintf "ok (%d row)" n
      | Interactive.Answered atoms ->
        "answered"
        ^ String.concat ""
            (List.map
               (fun (rel, values) ->
                 Printf.sprintf " %s(%s)" rel
                   (String.concat ", "
                      (List.map Ent_storage.Value.to_string values)))
               atoms)
      | Interactive.Parked -> "waiting for a partner"
      | Interactive.Committed -> "committed"
      | Interactive.Commit_pending -> "waiting for partners to commit"
      | Interactive.Blocked -> "blocked on a lock (poll to retry)"
      | Interactive.Aborted reason -> "aborted: " ^ reason
    in
    let handle_line line =
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.index_opt line '>' with
        | Some i
          when i > 0
               && String.for_all
                    (fun c ->
                      (c >= 'a' && c <= 'z')
                      || (c >= 'A' && c <= 'Z')
                      || (c >= '0' && c <= '9')
                      || c = '_')
                    (String.sub line 0 i) ->
          let name = String.sub line 0 i in
          let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          let s = session_of name in
          let reply =
            match String.lowercase_ascii rest with
            | "poll" -> Interactive.poll s
            | "commit" -> Interactive.commit s
            | "cancel" ->
              Interactive.cancel s;
              Interactive.poll s
            | _ -> (
              try Interactive.execute s rest
              with Invalid_argument msg -> Interactive.Aborted msg)
          in
          Printf.printf "%-8s %s\n%!" name (describe reply)
        | _ -> (
          match
            Ent_sql.Eval.exec_stmt access boot_env (Ent_sql.Parser.parse_stmt line)
          with
          | Ent_sql.Eval.Rows rows -> Printf.printf "boot     %d row(s)\n%!" (List.length rows)
          | Ent_sql.Eval.Affected _ | Ent_sql.Eval.Created -> Printf.printf "boot     ok\n%!"
          | exception Ent_sql.Parser.Parse_error msg ->
            Printf.printf "boot     parse error: %s\n%!" msg
          | exception Ent_sql.Eval.Eval_error msg ->
            Printf.printf "boot     error: %s\n%!" msg)
    in
    List.iter handle_line (String.split_on_char '\n' input);
    0

(* --- live dashboard ---

   [youtopia top] runs a script exactly like [run], but renders a text
   frame on every closed telemetry window: per-phase latency means,
   lock-shard waiter heat, grounding-cache hit rate and domain
   utilization. Simulated time drives the frames; [--delay] slows them
   down to a watchable wall-clock pace. *)

let top_script path connections frequency parallel isolation_name window delay
    =
  match isolation_of_string isolation_name with
  | Error (`Msg msg) ->
    prerr_endline msg;
    2
  | Ok (isolation, levels) when window > 0.0 -> (
    let input =
      match path with
      | Some p ->
        let ic = open_in p in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      | None -> In_channel.input_all stdin
    in
    match Ent_sql.Parser.parse_script input with
    | exception Ent_sql.Parser.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      2
    | exception Ent_sql.Lexer.Lex_error msg ->
      Printf.eprintf "lex error: %s\n" msg;
      2
    | items ->
      (* Events feed the per-phase attribution; windows feed the rest. *)
      Ent_obs.Event.set_logging true;
      Ent_obs.Event.reset ();
      Ent_obs.Timeseries.enable ~width:window ();
      let frames = ref 0 in
      let heat_char v =
        let scale = " .:-=+*#%@" in
        let i = min (String.length scale - 1) (int_of_float v) in
        scale.[max 0 i]
      in
      let render (w : Ent_obs.Timeseries.window) =
        incr frames;
        let buf = Buffer.create 1024 in
        let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        pf "\027[2J\027[H";
        pf "youtopia top — sim %.3fs  (window %.2fs, frame %d)\n\n"
          (w.w_start +. w.w_width) w.w_width !frames;
        let d name = Ent_obs.Timeseries.counter_delta w name in
        let rate n = float_of_int n /. w.w_width in
        pf "  txns  commit %.0f/s  abort %.0f/s  deadlock %.0f/s  runs %.0f/s\n"
          (rate (d "txn.engine.commits"))
          (rate (d "txn.engine.aborts"))
          (rate (d "core.scheduler.deadlocks"))
          (rate (d "core.scheduler.runs"));
        (* Per-phase latency means over finalized tasks so far. *)
        let reports =
          Ent_obs.Attrib.of_events
            ~time:(fun (e : Ent_obs.Event.t) -> e.t_sim)
            (Ent_obs.Event.events ())
        in
        let finished =
          List.filter
            (fun (r : Ent_obs.Attrib.txn_report) -> r.outcome <> None)
            reports
        in
        let n = List.length finished in
        pf "\n  phase means over %d finished txn(s):\n" n;
        List.iter
          (fun phase ->
            let sum =
              List.fold_left
                (fun acc (r : Ent_obs.Attrib.txn_report) ->
                  acc +. List.assq phase r.by_phase)
                0.0 finished
            in
            pf "    %-16s %8.3f ms\n"
              (Ent_obs.Attrib.phase_name phase)
              (if n = 0 then 0.0 else 1000.0 *. sum /. float_of_int n))
          Ent_obs.Attrib.phases;
        (* Lock-shard heat: one char per shard, by waiter count. *)
        let shards =
          List.filter
            (fun (name, _) ->
              String.length name > 22
              && String.sub name 0 22 = "txn.lock.shard_waiters")
            w.w_gauges
        in
        if shards <> [] then begin
          pf "\n  lock-shard waiters  [";
          List.iter (fun (_, v) -> pf "%c" (heat_char v)) shards;
          pf "]  (max %d)\n"
            (int_of_float
               (List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 shards))
        end;
        (* Cumulative grounding-cache hit rate. *)
        let hits =
          Option.value ~default:0
            (Ent_obs.Obs.find_counter "entangle.gcache.hits")
        in
        let misses =
          Option.value ~default:0
            (Ent_obs.Obs.find_counter "entangle.gcache.misses")
        in
        if hits + misses > 0 then
          pf "\n  gcache  %d hit(s) / %d lookup(s)  (%.0f%%)\n" hits
            (hits + misses)
            (100.0 *. float_of_int hits /. float_of_int (hits + misses));
        (match List.assoc_opt "par.pool.busy_domains" w.w_gauges with
        | Some busy when parallel > 1 ->
          pf "\n  domains  %.0f/%d busy\n" busy parallel
        | _ -> ());
        print_string (Buffer.contents buf);
        flush stdout;
        if delay > 0.0 then Unix.sleepf delay
      in
      Ent_obs.Timeseries.set_on_window (Some render);
      let runner =
        if parallel > 1 then Some (Ent_par.Pool.create ~domains:parallel)
        else None
      in
      Fun.protect
        ~finally:(fun () ->
          Ent_obs.Timeseries.set_on_window None;
          Option.iter Ent_par.Pool.shutdown runner)
      @@ fun () ->
      let config =
        {
          Scheduler.default_config with
          connections;
          trigger = Scheduler.Every_arrivals frequency;
          isolation;
          runner;
        }
      in
      let m = Manager.create ~config () in
      let access = Ent_sql.Eval.direct_access (Manager.catalog m) in
      let env = Ent_sql.Eval.fresh_env () in
      let count = ref 0 in
      List.iter
        (fun item ->
          match item with
          | Ent_sql.Parser.Stmt (stmt, _) ->
            ignore (Ent_sql.Eval.exec_stmt access env stmt)
          | Ent_sql.Parser.Program ast ->
            incr count;
            let label = Printf.sprintf "txn-%d" !count in
            let level = level_of_count levels !count in
            ignore (Manager.submit m (Program.make ~isolation:level ~label ast)))
        items;
      Manager.drain m;
      (* Last partial window becomes the final frame. *)
      Ent_obs.Timeseries.flush ();
      let s = Manager.stats m in
      Printf.printf
        "\n-- done: %d frame(s), runs: %d, commits: %d, entanglements: %d, \
         simulated time: %.3f ms\n"
        !frames s.runs s.commits s.entangle_events
        (1000.0 *. Manager.now m);
      0)
  | Ok _ ->
    prerr_endline "youtopia top: --window must be positive";
    2

open Cmdliner

let path =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SCRIPT"
         ~doc:"Script file (reads standard input when omitted).")

let connections =
  Arg.(value & opt int 100 & info [ "connections"; "c" ]
         ~doc:"Concurrent connections of the simulated DBMS.")

let frequency =
  Arg.(value & opt int 1 & info [ "frequency"; "f" ]
         ~doc:"Run frequency: start a run after this many arrivals.")

let parallel =
  Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N"
         ~doc:"Execute runs on a pool of $(docv) OCaml domains. 1 (the \
               default) is the deterministic single-domain mode.")

let isolation =
  Arg.(value & opt string "full" & info [ "isolation" ]
         ~doc:"Isolation level: full, no-group-commit, no-grounding-locks, \
               read-uncommitted (2PL presets); si (every transaction reads a \
               begin-time snapshot, first-committer-wins validation at \
               commit); mixed (alternate 2PL and si per submission).")

let show =
  Arg.(value & opt_all string [] & info [ "show" ]
         ~doc:"Print this table after the script finishes (repeatable).")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print answer tuples.")

let metrics =
  Arg.(value & opt (some string) None
         & info [ "metrics-out"; "metrics" ] ~docv:"FILE"
             ~doc:"Write an Obs metrics snapshot (JSON) to $(docv) on exit.")

let trace =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Enable span tracing; spans are included in the --metrics \
               snapshot.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Log causal transaction events and write a Perfetto / \
               chrome://tracing trace of the whole script to $(docv).")

let wait_graph =
  Arg.(value & flag & info [ "wait-graph" ]
         ~doc:"Print the wait/entanglement graph after the pool drains \
               (who is blocked on whom, and why).")

let wait_graph_dot =
  Arg.(value & opt (some string) None & info [ "wait-graph-dot" ] ~docv:"FILE"
         ~doc:"Write the wait/entanglement graph as graphviz DOT to $(docv).")

let certify =
  Arg.(value & flag & info [ "certify" ]
         ~doc:"Certify the schedule online (conflict-serializability over \
               committed transactions, no read-from-aborted, no widows, \
               stable quasi-reads); print a report and exit nonzero on any \
               violation.")

let slo =
  Arg.(value & opt (some file) None & info [ "slo" ] ~docv:"FILE"
         ~doc:"Evaluate the SLO specs in $(docv) (JSON; see Ent_obs.Slo) \
               online over per-window telemetry while the script runs; \
               print a structured report and exit nonzero when any SLO \
               burned through both its short and long windows.")

let flight_out =
  Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE"
         ~doc:"Write a flight-recorder dump (metrics, time-series windows, \
               event ring, SLO report) to $(docv) — on breach when --slo is \
               given, unconditionally otherwise.")

let window =
  Arg.(value & opt float 0.25 & info [ "window" ] ~docv:"S"
         ~doc:"Dashboard window width in simulated seconds (one frame per \
               closed window).")

let delay =
  Arg.(value & opt float 0.0 & info [ "delay"; "interval" ] ~docv:"S"
         ~doc:"Wall-clock pause between frames, to watch the (fast) \
               simulation at a human pace.")

let run_cmd =
  let doc = "execute a script of classical and entangled transactions" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_script $ path $ connections $ frequency $ parallel
          $ isolation $ show $ verbose $ metrics $ trace $ trace_out
          $ wait_graph $ wait_graph_dot $ certify $ slo $ flight_out)

let repl_cmd =
  let doc =
    "drive interactive sessions from a script of 'name> statement' lines"
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const repl $ path $ isolation)

let top_cmd =
  let doc =
    "execute a script under a live text dashboard (per-phase latencies, \
     lock-shard heat, cache hit rate, domain utilization)"
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const top_script $ path $ connections $ frequency $ parallel
          $ isolation $ window $ delay)

let main =
  let doc = "the Youtopia entangled transaction manager" in
  Cmd.group
    (Cmd.info "youtopia" ~version:"1.0.0" ~doc)
    [ run_cmd; repl_cmd; top_cmd ]

let () = exit (Cmd.eval' main)
