-- The paper's running example (Section 2 / Figure 1) as a script:
-- Mickey and Minnie book the same flight to LA via entangled queries.
-- Lint-clean: consistent lock order, no writes to grounding tables,
-- satisfiable bodies.

CREATE TABLE Flights (fno INT, fdate DATE, dest STRING);
CREATE TABLE Airlines (fno INT, airline STRING);
CREATE TABLE Bookings (passenger STRING, fno INT, fdate DATE);

INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
INSERT INTO Flights VALUES (124, '2011-05-03', 'LA');
INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
INSERT INTO Airlines VALUES (122, 'United');
INSERT INTO Airlines VALUES (123, 'United');
INSERT INTO Airlines VALUES (124, 'USAir');
INSERT INTO Airlines VALUES (235, 'Delta');

BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;
SELECT 'Mickey', fno AS @fno, fdate AS @fdate INTO ANSWER Reservation
WHERE (fno, fdate) IN (SELECT fno, fdate FROM Flights WHERE dest = 'LA')
AND ('Minnie', fno, fdate) IN ANSWER Reservation
CHOOSE 1;
INSERT INTO Bookings VALUES ('Mickey', @fno, @fdate);
COMMIT;

BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;
SELECT 'Minnie', fno AS @fno, fdate AS @fdate INTO ANSWER Reservation
WHERE (fno, fdate) IN
  (SELECT F.fno, F.fdate FROM Flights F, Airlines A
   WHERE F.dest = 'LA' AND F.fno = A.fno AND A.airline = 'United')
AND ('Mickey', fno, fdate) IN ANSWER Reservation
CHOOSE 1;
INSERT INTO Bookings VALUES ('Minnie', @fno, @fdate);
COMMIT;
