-- Two friends coordinate a restaurant booking: each requires the
-- other's presence via an entangled query over the same Tables
-- relation, then records their own reservation. Lint-clean.

CREATE TABLE Restaurants (rid INT, city STRING, seats INT);
CREATE TABLE Reservations (guest STRING, rid INT);

INSERT INTO Restaurants VALUES (1, 'Ithaca', 4);
INSERT INTO Restaurants VALUES (2, 'Ithaca', 2);
INSERT INTO Restaurants VALUES (3, 'Dryden', 6);

BEGIN TRANSACTION WITH TIMEOUT 1 HOURS;
SELECT 'Alice', rid AS @rid INTO ANSWER Dinner
WHERE (rid) IN (SELECT rid FROM Restaurants WHERE city = 'Ithaca' AND seats >= 2)
AND ('Bob', rid) IN ANSWER Dinner
CHOOSE 1;
INSERT INTO Reservations VALUES ('Alice', @rid);
COMMIT;

BEGIN TRANSACTION WITH TIMEOUT 1 HOURS;
SELECT 'Bob', rid AS @rid INTO ANSWER Dinner
WHERE (rid) IN (SELECT rid FROM Restaurants WHERE city = 'Ithaca')
AND ('Alice', rid) IN ANSWER Dinner
CHOOSE 1;
INSERT INTO Reservations VALUES ('Bob', @rid);
COMMIT;
